//===- tests/ArrayExprTest.cpp - Lazy expression semantics ----------------===//

#include "array/Expr.h"
#include "array/NDArray.h"
#include "array/WithLoop.h"
#include "runtime/SerialBackend.h"

#include <gtest/gtest.h>

using namespace sacfd;

namespace {

NDArray<double> iota(size_t N) {
  NDArray<double> A(Shape{N});
  for (size_t I = 0; I < N; ++I)
    A[I] = static_cast<double>(I);
  return A;
}

SerialBackend Exec;

} // namespace

TEST(NDArrayTest, ConstructionAndAccess) {
  NDArray<double> A(Shape{2, 3});
  EXPECT_EQ(A.rank(), 2u);
  EXPECT_EQ(A.size(), 6u);
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_EQ(A[I], 0.0) << "value-initialized";
  A.at(1, 2) = 7.5;
  EXPECT_EQ(A[5], 7.5);
  A.fill(3.0);
  EXPECT_EQ(A.at(0, 0), 3.0);
  EXPECT_EQ(A.at(1, 2), 3.0);
}

TEST(NDArrayTest, FillConstructorAndReshape) {
  NDArray<int> A(Shape{4}, 9);
  for (size_t I = 0; I < 4; ++I)
    EXPECT_EQ(A[I], 9);
  A.reshapeDiscard(Shape{2, 2});
  EXPECT_EQ(A.shape(), Shape({2, 2}));
  EXPECT_EQ(A[0], 0) << "reshapeDiscard value-initializes";
}

TEST(ExprTest, ElementwiseBinaryOnArrays) {
  NDArray<double> A = iota(5);
  NDArray<double> B = iota(5);
  NDArray<double> Out = materialize(toExpr(A) + toExpr(B), Exec);
  for (size_t I = 0; I < 5; ++I)
    EXPECT_EQ(Out[I], 2.0 * static_cast<double>(I));
}

TEST(ExprTest, MixedArrayExprOperands) {
  NDArray<double> A = iota(4);
  // (A + A) * A - A : single fused pass.
  auto Ex = (toExpr(A) + toExpr(A)) * toExpr(A) - toExpr(A);
  NDArray<double> Out = materialize(Ex, Exec);
  for (size_t I = 0; I < 4; ++I) {
    double V = static_cast<double>(I);
    EXPECT_EQ(Out[I], (V + V) * V - V);
  }
}

TEST(ExprTest, ScalarBroadcastBothSides) {
  NDArray<double> A = iota(4);
  NDArray<double> R = materialize(toExpr(A) * 2.0 + 1.0, Exec);
  NDArray<double> L = materialize(10.0 - toExpr(A), Exec);
  for (size_t I = 0; I < 4; ++I) {
    EXPECT_EQ(R[I], 2.0 * static_cast<double>(I) + 1.0);
    EXPECT_EQ(L[I], 10.0 - static_cast<double>(I));
  }
}

TEST(ExprTest, UnaryTransformsAndNegation) {
  NDArray<double> A(Shape{3});
  A[0] = -4.0;
  A[1] = 9.0;
  A[2] = -16.0;
  NDArray<double> Abs = materialize(fabsE(A), Exec);
  EXPECT_EQ(Abs[0], 4.0);
  EXPECT_EQ(Abs[2], 16.0);
  NDArray<double> Root = materialize(sqrtE(fabsE(A)), Exec);
  EXPECT_DOUBLE_EQ(Root[0], 2.0);
  EXPECT_DOUBLE_EQ(Root[1], 3.0);
  EXPECT_DOUBLE_EQ(Root[2], 4.0);
  NDArray<double> Neg = materialize(-toExpr(A), Exec);
  EXPECT_EQ(Neg[0], 4.0);
  EXPECT_EQ(Neg[1], -9.0);
}

//===----------------------------------------------------------------------===//
// drop / take — SaC semantics
//===----------------------------------------------------------------------===//

TEST(CropTest, DropFromFront) {
  NDArray<double> A = iota(6);
  auto Ex = drop(Index{2}, A);
  ASSERT_EQ(Ex.shape(), Shape({4}));
  NDArray<double> Out = materialize(Ex, Exec);
  for (size_t I = 0; I < 4; ++I)
    EXPECT_EQ(Out[I], static_cast<double>(I + 2));
}

TEST(CropTest, DropFromBackWithNegativeOffset) {
  NDArray<double> A = iota(6);
  NDArray<double> Out = materialize(drop(Index{-2}, A), Exec);
  ASSERT_EQ(Out.shape(), Shape({4}));
  for (size_t I = 0; I < 4; ++I)
    EXPECT_EQ(Out[I], static_cast<double>(I));
}

TEST(CropTest, TakeFrontAndBack) {
  NDArray<double> A = iota(6);
  NDArray<double> Front = materialize(take(Index{3}, A), Exec);
  ASSERT_EQ(Front.shape(), Shape({3}));
  EXPECT_EQ(Front[0], 0.0);
  EXPECT_EQ(Front[2], 2.0);

  NDArray<double> Back = materialize(take(Index{-3}, A), Exec);
  ASSERT_EQ(Back.shape(), Shape({3}));
  EXPECT_EQ(Back[0], 3.0);
  EXPECT_EQ(Back[2], 5.0);
}

TEST(CropTest, TwoDimensionalDrop) {
  NDArray<double> A(Shape{4, 5});
  for (size_t I = 0; I < A.size(); ++I)
    A[I] = static_cast<double>(I);
  // Drop first row and last two columns.
  auto Ex = drop(Index{1, -2}, A);
  ASSERT_EQ(Ex.shape(), Shape({3, 3}));
  NDArray<double> Out = materialize(Ex, Exec);
  EXPECT_EQ(Out.at(0, 0), A.at(1, 0));
  EXPECT_EQ(Out.at(2, 2), A.at(3, 2));
}

TEST(CropTest, PaperDfDxNoBoundary) {
  // The paper's dfDxNoBoundary in full:
  //   return (drop([1], dqc) - drop([-1], dqc)) / delta;
  NDArray<double> Dqc = iota(8);
  for (size_t I = 0; I < 8; ++I)
    Dqc[I] = Dqc[I] * Dqc[I]; // f(x) = x^2, so df = 2x+1
  double Delta = 1.0;
  auto DfDx = (drop(Index{1}, Dqc) - drop(Index{-1}, Dqc)) / Delta;
  ASSERT_EQ(DfDx.shape(), Shape({7}));
  NDArray<double> Out = materialize(DfDx, Exec);
  for (size_t I = 0; I < 7; ++I)
    EXPECT_DOUBLE_EQ(Out[I], 2.0 * static_cast<double>(I) + 1.0);
}

TEST(CropTest, DropEverythingGivesEmpty) {
  NDArray<double> A = iota(3);
  auto Ex = drop(Index{3}, A);
  EXPECT_EQ(Ex.shape().count(), 0u);
}

//===----------------------------------------------------------------------===//
// Set notation
//===----------------------------------------------------------------------===//

TEST(MapExprTest, PaperTransposeExample) {
  // { [i,j] -> matrix[j,i] } from Section 2.
  NDArray<double> M(Shape{2, 3});
  for (size_t I = 0; I < M.size(); ++I)
    M[I] = static_cast<double>(I);
  auto Transposed = mapIndex(Shape{3, 2}, [&M](const Index &Iv) {
    return M.at(Iv[1], Iv[0]);
  });
  NDArray<double> Out = materialize(Transposed, Exec);
  for (std::ptrdiff_t I = 0; I < 3; ++I)
    for (std::ptrdiff_t J = 0; J < 2; ++J)
      EXPECT_EQ(Out.at(I, J), M.at(J, I));
}

TEST(MapExprTest, ComposesWithElementwiseOperators) {
  auto Sq = mapIndex(Shape{5}, [](const Index &Iv) {
    return static_cast<double>(Iv[0] * Iv[0]);
  });
  NDArray<double> Out = materialize(Sq + Sq, Exec);
  for (size_t I = 0; I < 5; ++I)
    EXPECT_EQ(Out[I], 2.0 * static_cast<double>(I * I));
}

//===----------------------------------------------------------------------===//
// Struct element types (the paper's fluid_cv)
//===----------------------------------------------------------------------===//

namespace {

struct Vec2 {
  double X = 0, Y = 0;
  friend Vec2 operator+(Vec2 A, Vec2 B) { return {A.X + B.X, A.Y + B.Y}; }
  friend Vec2 operator-(Vec2 A, Vec2 B) { return {A.X - B.X, A.Y - B.Y}; }
  friend Vec2 operator/(Vec2 A, double S) { return {A.X / S, A.Y / S}; }
};

} // namespace

TEST(ExprTest, UserDefinedCellTypes) {
  NDArray<Vec2> A(Shape{4});
  for (size_t I = 0; I < 4; ++I)
    A[I] = {static_cast<double>(I), static_cast<double>(2 * I)};
  // Central difference on a struct-valued field, exactly like fluid_cv.
  auto Ex = (drop(Index{1}, A) - drop(Index{-1}, A)) / 2.0;
  NDArray<Vec2> Out = materialize(Ex, Exec);
  ASSERT_EQ(Out.shape(), Shape({3}));
  // Adjacent difference of a linear ramp: X steps by 1, Y by 2; halved.
  for (size_t I = 0; I < 3; ++I) {
    EXPECT_DOUBLE_EQ(Out[I].X, 0.5);
    EXPECT_DOUBLE_EQ(Out[I].Y, 1.0);
  }
}
