//===- tests/ShapeTest.cpp - array/Shape unit tests -----------------------===//

#include "array/Shape.h"

#include <gtest/gtest.h>

using namespace sacfd;

TEST(Shape, DefaultIsRankZeroScalar) {
  Shape S;
  EXPECT_EQ(S.rank(), 0u);
  EXPECT_EQ(S.count(), 1u);
  EXPECT_EQ(S.str(), "[]");
}

TEST(Shape, ExtentsAndCount) {
  Shape S{4, 5, 6};
  EXPECT_EQ(S.rank(), 3u);
  EXPECT_EQ(S.dim(0), 4u);
  EXPECT_EQ(S.dim(1), 5u);
  EXPECT_EQ(S.dim(2), 6u);
  EXPECT_EQ(S.count(), 120u);
  EXPECT_EQ(S.str(), "[4,5,6]");
}

TEST(Shape, UniformBuilder) {
  Shape S = Shape::uniform(2, 400);
  EXPECT_EQ(S.rank(), 2u);
  EXPECT_EQ(S.dim(0), 400u);
  EXPECT_EQ(S.dim(1), 400u);
}

TEST(Shape, EqualityComparesRankAndExtents) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
  EXPECT_NE(Shape({2}), Shape({}));
}

TEST(Shape, ContainsChecksEveryAxis) {
  Shape S{3, 4};
  EXPECT_TRUE(S.contains(Index{0, 0}));
  EXPECT_TRUE(S.contains(Index{2, 3}));
  EXPECT_FALSE(S.contains(Index{3, 0}));
  EXPECT_FALSE(S.contains(Index{0, 4}));
  EXPECT_FALSE(S.contains(Index{-1, 0}));
  EXPECT_FALSE(S.contains(Index{0})); // rank mismatch
}

TEST(Shape, LinearizeIsRowMajor) {
  Shape S{3, 4};
  EXPECT_EQ(S.linearize(Index{0, 0}), 0u);
  EXPECT_EQ(S.linearize(Index{0, 3}), 3u);
  EXPECT_EQ(S.linearize(Index{1, 0}), 4u);
  EXPECT_EQ(S.linearize(Index{2, 3}), 11u);
}

TEST(Shape, DelinearizeInvertsLinearize) {
  Shape S{3, 5, 2};
  for (size_t L = 0; L < S.count(); ++L) {
    Index Ix = S.delinearize(L);
    EXPECT_EQ(S.linearize(Ix), L);
  }
}

TEST(Shape, IncrementWalksRowMajorOrder) {
  Shape S{2, 3};
  Index Ix = S.delinearize(0);
  size_t Linear = 0;
  do {
    EXPECT_EQ(S.linearize(Ix), Linear);
    ++Linear;
  } while (S.increment(Ix));
  EXPECT_EQ(Linear, S.count());
}

TEST(Shape, IncrementRank1) {
  Shape S{4};
  Index Ix{0};
  EXPECT_TRUE(S.increment(Ix));
  EXPECT_EQ(Ix[0], 1);
  Ix[0] = 3;
  EXPECT_FALSE(S.increment(Ix));
}

TEST(IndexTest, EqualityAndAccess) {
  Index A{1, 2};
  Index B{1, 2};
  Index C{2, 1};
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_NE(A, Index{1});
  EXPECT_EQ(A[0], 1);
  EXPECT_EQ(A[1], 2);
  A[1] = 7;
  EXPECT_EQ(A[1], 7);
}

TEST(Shape, ZeroExtentAxisGivesEmptyArray) {
  Shape S{5, 0};
  EXPECT_EQ(S.count(), 0u);
}
