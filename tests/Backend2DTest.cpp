//===- tests/Backend2DTest.cpp - parallelFor2D conformance tests ----------===//
//
// The 2D iteration-space contract: every backend must visit each (row,
// col) cell exactly once — tiled or flattened, at any worker count and
// under every tile-dealing schedule — count exactly one region per
// non-empty call, and produce bit-identical solver fields and telemetry
// whether the hot loops run tiled or row-flattened.  The field/telemetry
// half is the acceptance gate of the tiling work: tiling may only
// reorder the arithmetic, never change it.
//
//===----------------------------------------------------------------------===//

#include "runtime/BlockReduce.h"
#include "runtime/Runtime.h"
#include "solver/ArraySolver.h"
#include "solver/Diagnostics.h"
#include "solver/FusedSolver.h"
#include "solver/Problems.h"
#include "telemetry/Telemetry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

using namespace sacfd;

namespace {

constexpr unsigned kWorkerCounts[] = {1, 2, 4, 8};
constexpr BackendKind kAllKinds[] = {BackendKind::Serial,
                                     BackendKind::ForkJoin,
                                     BackendKind::SpinPool,
                                     BackendKind::Tasks};

struct Backend2DCase {
  BackendKind Kind;
  unsigned Threads;
  Tile TileCfg;

  std::string label() const {
    std::string S = backendKindName(Kind);
    S += "_t" + std::to_string(Threads) + "_" + TileCfg.str();
    if (TileCfg.Enabled)
      S += "_" + TileCfg.Dealing.str();
    for (char &C : S)
      if (C == '-' || C == ',')
        C = '_';
    return S;
  }
};

std::vector<Backend2DCase> allCases() {
  std::vector<Backend2DCase> Cases;
  const Tile Tiles[] = {
      Tile::off(),
      Tile::automatic(),
      Tile::sized(3, 5), // deliberately ragged vs the test extents
      [] {
        Tile T = Tile::sized(4, 16);
        T.Dealing = Schedule::staticChunk(2);
        return T;
      }(),
      [] {
        Tile T = Tile::sized(4, 16);
        T.Dealing = Schedule::dynamic(1);
        return T;
      }(),
  };
  for (BackendKind Kind : kAllKinds)
    for (unsigned Threads : kWorkerCounts) {
      if (Kind == BackendKind::Serial && Threads != 1)
        continue;
      for (const Tile &T : Tiles)
        Cases.push_back({Kind, Threads, T});
    }
  return Cases;
}

class ParallelFor2DTest : public ::testing::TestWithParam<Backend2DCase> {
protected:
  std::unique_ptr<Backend> makeBackend() const {
    const Backend2DCase &C = GetParam();
    return createBackend(C.Kind, C.Threads, Schedule::staticBlock(),
                         C.TileCfg);
  }
};

} // namespace

TEST_P(ParallelFor2DTest, EachCellRunsExactlyOnce) {
  auto B = makeBackend();
  constexpr size_t Rows = 43, Cols = 67; // primes: ragged edge tiles
  std::vector<std::atomic<int>> Hits(Rows * Cols);
  for (auto &H : Hits)
    H.store(0);

  B->parallelFor2D(Rows, Cols,
                   [&Hits](size_t RB, size_t RE, size_t CB, size_t CE) {
                     for (size_t R = RB; R < RE; ++R)
                       for (size_t C = CB; C < CE; ++C)
                         Hits[R * Cols + C].fetch_add(
                             1, std::memory_order_relaxed);
                   });

  for (size_t I = 0; I < Rows * Cols; ++I)
    ASSERT_EQ(Hits[I].load(), 1) << "cell " << I;
}

TEST_P(ParallelFor2DTest, RectsStayInBounds) {
  auto B = makeBackend();
  constexpr size_t Rows = 19, Cols = 31;
  std::atomic<bool> Ok{true};
  B->parallelFor2D(Rows, Cols,
                   [&Ok](size_t RB, size_t RE, size_t CB, size_t CE) {
                     if (RB >= RE || CB >= CE || RE > Rows || CE > Cols)
                       Ok.store(false);
                   });
  EXPECT_TRUE(Ok.load());
}

TEST_P(ParallelFor2DTest, CountsExactlyOneRegionPerCall) {
  auto B = makeBackend();
  uint64_t Before = B->regionsDispatched();
  B->parallelFor2D(16, 16, [](size_t, size_t, size_t, size_t) {});
  EXPECT_EQ(B->regionsDispatched(), Before + 1);

  // Empty spaces dispatch nothing.
  B->parallelFor2D(0, 16, [](size_t, size_t, size_t, size_t) {});
  B->parallelFor2D(16, 0, [](size_t, size_t, size_t, size_t) {});
  EXPECT_EQ(B->regionsDispatched(), Before + 1);
}

TEST_P(ParallelFor2DTest, NestedCallsFallBackInline) {
  auto B = makeBackend();
  constexpr size_t Rows = 8, Cols = 8;
  std::vector<std::atomic<int>> Hits(Rows * Cols);
  for (auto &H : Hits)
    H.store(0);
  B->parallelFor(0, 2, [&](size_t Begin, size_t End) {
    for (size_t I = Begin; I < End; ++I)
      B->parallelFor2D(Rows, Cols,
                       [&](size_t RB, size_t RE, size_t CB, size_t CE) {
                         for (size_t R = RB; R < RE; ++R)
                           for (size_t C = CB; C < CE; ++C)
                             Hits[R * Cols + C].fetch_add(
                                 1, std::memory_order_relaxed);
                       });
  });
  for (size_t I = 0; I < Rows * Cols; ++I)
    ASSERT_EQ(Hits[I].load(), 2) << "cell " << I;
}

TEST_P(ParallelFor2DTest, BlockReduce2DMatchesSerialSum) {
  auto B = makeBackend();
  constexpr size_t Rows = 37, Cols = 53;
  // Max of a cell-unique function: exact under any grouping, so the
  // result must be identical no matter how the space is carved.
  double Got = blockReduce2D<double>(
      Rows, Cols, *B, -1.0,
      [](size_t RB, size_t RE, size_t CB, size_t CE) {
        double M = -1.0;
        for (size_t R = RB; R < RE; ++R)
          for (size_t C = CB; C < CE; ++C)
            M = std::max(M, static_cast<double>(R * 1000 + C));
        return M;
      },
      [](double A, double Bv) { return std::max(A, Bv); });
  EXPECT_EQ(Got, static_cast<double>((Rows - 1) * 1000 + (Cols - 1)));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ParallelFor2DTest, ::testing::ValuesIn(allCases()),
    [](const ::testing::TestParamInfo<Backend2DCase> &Info) {
      return Info.param.label();
    });

//===----------------------------------------------------------------------===//
// Tiled vs flattened bit-identity on the real solvers
//===----------------------------------------------------------------------===//

namespace {

bool sameBits(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

struct TelemetryDigest {
  std::vector<std::pair<std::string, uint64_t>> Counters;
  std::vector<telemetry::GaugeSeries> Gauges;
};

TelemetryDigest digest(const telemetry::MetricsReport &R) {
  TelemetryDigest D;
  for (const telemetry::CounterTotal &C : R.Counters)
    D.Counters.emplace_back(C.Name, C.Total);
  D.Gauges = R.Gauges;
  return D;
}

void expectSameTelemetry(const TelemetryDigest &Ref,
                         const TelemetryDigest &Got,
                         const std::string &Label) {
  ASSERT_EQ(Ref.Counters.size(), Got.Counters.size()) << Label;
  for (size_t I = 0; I < Ref.Counters.size(); ++I) {
    EXPECT_EQ(Ref.Counters[I].first, Got.Counters[I].first) << Label;
    EXPECT_EQ(Ref.Counters[I].second, Got.Counters[I].second)
        << Label << " counter " << Ref.Counters[I].first;
  }
  ASSERT_EQ(Ref.Gauges.size(), Got.Gauges.size()) << Label;
  for (size_t I = 0; I < Ref.Gauges.size(); ++I) {
    const telemetry::GaugeSeries &RG = Ref.Gauges[I];
    const telemetry::GaugeSeries &GG = Got.Gauges[I];
    EXPECT_EQ(RG.Name, GG.Name) << Label;
    ASSERT_EQ(RG.Samples.size(), GG.Samples.size())
        << Label << " gauge " << RG.Name;
    for (size_t S = 0; S < RG.Samples.size(); ++S)
      EXPECT_TRUE(sameBits(RG.Samples[S].Value, GG.Samples[S].Value))
          << Label << " gauge " << RG.Name << " sample " << S;
  }
}

/// Runs \p Steps of a fresh solver on a (Kind, Workers, Tile) backend
/// with full telemetry, returning the digest and the live solver.
template <typename SolverT>
TelemetryDigest runTiled(const Problem<2> &Prob, const SchemeConfig &Scheme,
                         BackendKind Kind, unsigned Workers,
                         const Tile &TileCfg, unsigned Steps,
                         std::unique_ptr<Backend> &Exec,
                         std::unique_ptr<SolverT> &Out) {
  Exec = createBackend(Kind, Workers, Schedule::staticBlock(), TileCfg);
  telemetry::reset();
  telemetry::setGaugeStride(1);
  telemetry::setEnabled(true);
  Out = std::make_unique<SolverT>(Prob, Scheme, *Exec);
  Out->advanceSteps(Steps);
  TelemetryDigest D = digest(telemetry::snapshot());
  telemetry::setEnabled(false);
  return D;
}

template <typename SolverT>
void checkTiledIdentity(const Problem<2> &Prob, const SchemeConfig &Scheme,
                        unsigned Steps) {
  // Reference: serial, tiling off (the legacy row-flattened execution).
  std::unique_ptr<Backend> RefExec;
  std::unique_ptr<SolverT> Ref;
  TelemetryDigest RefTelem = runTiled<SolverT>(
      Prob, Scheme, BackendKind::Serial, 1, Tile::off(), Steps, RefExec,
      Ref);
  ASSERT_FALSE(RefTelem.Counters.empty());

  Tile Dynamic = Tile::sized(8, 16);
  Dynamic.Dealing = Schedule::dynamic(1);
  const Tile Tiles[] = {Tile::automatic(), Tile::sized(3, 7), Dynamic};

  for (BackendKind Kind : kAllKinds)
    for (unsigned Workers : kWorkerCounts) {
      if (Kind == BackendKind::Serial && Workers != 1)
        continue;
      for (const Tile &T : Tiles) {
        std::unique_ptr<Backend> Exec;
        std::unique_ptr<SolverT> S;
        TelemetryDigest Telem = runTiled<SolverT>(Prob, Scheme, Kind,
                                                  Workers, T, Steps, Exec,
                                                  S);
        std::string Label = std::string(Exec->name()) + "(" +
                            std::to_string(Workers) + ") tile=" + T.str() +
                            "/" + T.Dealing.str();
        EXPECT_DOUBLE_EQ(Ref->time(), S->time()) << Label;
        EXPECT_EQ(maxFieldDifference(*Ref, *S), 0.0) << Label;
        // The telemetry stream — including the region counters — must
        // not notice tiling: one counted region per converted loop.
        expectSameTelemetry(RefTelem, Telem, Label);
      }
    }
}

class Tiled2DIdentityTest : public ::testing::Test {
protected:
  void TearDown() override {
    telemetry::setEnabled(false);
    telemetry::reset();
  }
};

} // namespace

TEST_F(Tiled2DIdentityTest, ArraySolverBenchmarkScheme) {
  checkTiledIdentity<ArraySolver<2>>(shockInteraction2D(24, 2.2, 12.0),
                                     SchemeConfig::benchmarkScheme(), 6);
}

TEST_F(Tiled2DIdentityTest, FusedSolverBenchmarkScheme) {
  checkTiledIdentity<FusedSolver<2>>(shockInteraction2D(24, 2.2, 12.0),
                                     SchemeConfig::benchmarkScheme(), 6);
}

TEST_F(Tiled2DIdentityTest, ArraySolverFigureScheme) {
  // WENO3 + the limiter exercise the widest stencils across tile seams.
  checkTiledIdentity<ArraySolver<2>>(shockInteraction2D(20, 2.2, 10.0),
                                     SchemeConfig::figureScheme(), 5);
}
