//===- tests/ProblemsTest.cpp - Workload factory unit tests ----------------===//

#include "euler/RankineHugoniot.h"
#include "solver/Problems.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace sacfd;

TEST(Problems, SodInitialStates) {
  Problem<1> P = sodProblem(100);
  EXPECT_EQ(P.Name, "sod");
  EXPECT_EQ(P.Domain.cells(0), 100u);
  Prim<1> Left = P.InitialState({0.25});
  Prim<1> Right = P.InitialState({0.75});
  EXPECT_EQ(Left.Rho, 1.0);
  EXPECT_EQ(Left.P, 1.0);
  EXPECT_EQ(Right.Rho, 0.125);
  EXPECT_EQ(Right.P, 0.1);
  EXPECT_DOUBLE_EQ(P.EndTime, 0.2);
  EXPECT_EQ(P.Boundary.Side[0].front().Kind, BcKind::Transmissive);
}

TEST(Problems, BlastWavesHasReflectiveWallsAndThreeZones) {
  Problem<1> P = blastWavesProblem(100);
  EXPECT_EQ(P.Boundary.Side[0].front().Kind, BcKind::Reflective);
  EXPECT_EQ(P.Boundary.Side[1].front().Kind, BcKind::Reflective);
  EXPECT_EQ(P.InitialState({0.05}).P, 1000.0);
  EXPECT_EQ(P.InitialState({0.5}).P, 0.01);
  EXPECT_EQ(P.InitialState({0.95}).P, 100.0);
}

TEST(Problems, ShockInteractionBoundaryLayout) {
  double H = 50.0, Ms = 2.2;
  Problem<2> P = shockInteraction2D(100, Ms, H);
  // Domain is 2h x 2h with dx = 1.
  EXPECT_DOUBLE_EQ(P.Domain.hi(0), 2.0 * H);
  EXPECT_DOUBLE_EQ(P.Domain.dx(0), 1.0);

  // Left side: inflow below y = h, wall above.
  const auto &Left = P.Boundary.Side[boundarySide(0, false)];
  ASSERT_EQ(Left.size(), 2u);
  EXPECT_EQ(Left[0].Kind, BcKind::Inflow);
  EXPECT_EQ(Left[1].Kind, BcKind::Reflective);
  EXPECT_DOUBLE_EQ(Left[0].TangentialHi, H);

  // The inflow state is the Rankine-Hugoniot post-shock state along +x.
  PostShockState Post = postShockState(Ms, 1.0, 1.0, P.G);
  Prim<2> In = toPrim(Left[0].InflowState, P.G);
  EXPECT_NEAR(In.Rho, Post.Rho, 1e-13);
  EXPECT_NEAR(In.Vel[0], Post.U, 1e-13);
  EXPECT_NEAR(In.Vel[1], 0.0, 1e-13);
  EXPECT_NEAR(In.P, Post.P, 1e-13);

  // Bottom mirrors it along +y; right/top are open.
  const auto &Bottom = P.Boundary.Side[boundarySide(1, false)];
  Prim<2> InB = toPrim(Bottom[0].InflowState, P.G);
  EXPECT_NEAR(InB.Vel[1], Post.U, 1e-13);
  EXPECT_EQ(P.Boundary.Side[boundarySide(0, true)].front().Kind,
            BcKind::Transmissive);
  EXPECT_EQ(P.Boundary.Side[boundarySide(1, true)].front().Kind,
            BcKind::Transmissive);

  // EndTime is the transit time h / (Ms c0).
  double C0 = P.G.soundSpeed(1.0, 1.0);
  EXPECT_NEAR(P.EndTime, H / (Ms * C0), 1e-12);
}

TEST(Problems, Riemann2DConfigurationSelection) {
  Problem<2> C4 = riemann2D(16);
  EXPECT_EQ(C4.Name, "riemann-2d-c4");
  Problem<2> C6 = riemann2D(16, 2, 6);
  EXPECT_EQ(C6.Name, "riemann-2d-c6");
  EXPECT_DOUBLE_EQ(C6.EndTime, 0.3);
  Problem<2> C12 = riemann2D(16, 2, 12);
  EXPECT_EQ(C12.Name, "riemann-2d-c12");

  // Config 6 is all-contacts: pressure uniform everywhere.
  for (double X : {0.25, 0.75})
    for (double Y : {0.25, 0.75})
      EXPECT_DOUBLE_EQ(C6.InitialState({X, Y}).P, 1.0);
  // Config 4 quadrants differ in pressure.
  EXPECT_NE(C4.InitialState({0.75, 0.75}).P,
            C4.InitialState({0.25, 0.75}).P);
}

TEST(Problems, Riemann2DConfig3QuadrantStates) {
  Problem<2> P = riemann2D(16, 2, 3);
  EXPECT_EQ(P.Name, "riemann-2d-c3");
  EXPECT_DOUBLE_EQ(P.EndTime, 0.3);
  // Lax-Liu configuration 3: four shocks, the SW quadrant is the
  // low-density high-speed corner.
  Prim<2> NE = P.InitialState({0.75, 0.75});
  Prim<2> SW = P.InitialState({0.25, 0.25});
  EXPECT_DOUBLE_EQ(NE.Rho, 1.5);
  EXPECT_DOUBLE_EQ(NE.P, 1.5);
  EXPECT_NEAR(SW.Rho, 0.138, 1e-12);
  EXPECT_NEAR(SW.Vel[0], 1.206, 1e-12);
  EXPECT_NEAR(SW.Vel[1], 1.206, 1e-12);
  // NW and SE mirror each other across the diagonal.
  Prim<2> NW = P.InitialState({0.25, 0.75});
  Prim<2> SE = P.InitialState({0.75, 0.25});
  EXPECT_DOUBLE_EQ(NW.Rho, SE.Rho);
  EXPECT_DOUBLE_EQ(NW.Vel[0], SE.Vel[1]);
  EXPECT_DOUBLE_EQ(NW.P, SE.P);
}

TEST(Problems, SedovBlastGeometry) {
  Problem<2> P = sedovBlast2D(64);
  EXPECT_EQ(P.Name, "sedov");
  EXPECT_EQ(P.Domain.cells(0), 64u);
  // Centered disc of hot gas, uniform density everywhere.
  Prim<2> Center = P.InitialState({0.0, 0.0});
  Prim<2> Ambient = P.InitialState({0.3, 0.3});
  EXPECT_DOUBLE_EQ(Center.Rho, 1.0);
  EXPECT_DOUBLE_EQ(Ambient.Rho, 1.0);
  EXPECT_DOUBLE_EQ(Ambient.P, 0.01);
  // p = (gamma - 1) E / (pi r0^2) with E = 1, r0 = 0.1.
  EXPECT_NEAR(Center.P, (P.G.Gamma - 1.0) / (M_PI * 0.01), 1e-12);
  // Just outside the deposition radius the gas is ambient.
  EXPECT_DOUBLE_EQ(P.InitialState({0.11, 0.0}).P, 0.01);
  EXPECT_DOUBLE_EQ(P.EndTime, 0.1);
  EXPECT_EQ(P.Boundary.Side[0].front().Kind, BcKind::Transmissive);
}

TEST(Problems, DoubleMachReflectionLayout) {
  Problem<2> P = doubleMachReflection(60);
  EXPECT_EQ(P.Name, "double-mach");
  EXPECT_EQ(P.Domain.cells(0), 240u);
  EXPECT_EQ(P.Domain.cells(1), 60u);
  EXPECT_DOUBLE_EQ(P.Domain.hi(0), 4.0);

  // Initial shock line x = 1/6 + y / sqrt(3): post-shock left of it.
  double X0 = 1.0 / 6.0;
  Prim<2> Behind = P.InitialState({X0 - 0.05, 0.0});
  Prim<2> Ahead = P.InitialState({X0 + 0.05, 0.0});
  EXPECT_DOUBLE_EQ(Behind.Rho, 8.0);
  EXPECT_NEAR(Behind.Vel[0], 8.25 * std::sqrt(3.0) / 2.0, 1e-12);
  EXPECT_NEAR(Behind.Vel[1], -8.25 * 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(Ahead.Rho, 1.4);
  EXPECT_DOUBLE_EQ(Ahead.P, 1.0);
  // The shock is oblique: at y = 0.5 the front sits further right.
  EXPECT_DOUBLE_EQ(P.InitialState({X0 + 0.2, 0.5}).Rho, 8.0);

  // Bottom: inflow strip before the wall start, wall from x0 on.
  const auto &Bottom = P.Boundary.Side[boundarySide(1, false)];
  ASSERT_EQ(Bottom.size(), 2u);
  EXPECT_EQ(Bottom[0].Kind, BcKind::Inflow);
  EXPECT_EQ(Bottom[1].Kind, BcKind::Reflective);
  EXPECT_DOUBLE_EQ(Bottom[1].TangentialLo, X0);

  // Top: the time-dependent prescribed shock trace.
  const auto &Top = P.Boundary.Side[boundarySide(1, true)].front();
  ASSERT_EQ(Top.Kind, BcKind::Prescribed);
  ASSERT_TRUE(static_cast<bool>(Top.StateAt));
  // At t = 0 the trace crosses y = 1 at x0 + 1/sqrt(3) ~ 0.744.
  double Trace0 = X0 + 1.0 / std::sqrt(3.0);
  EXPECT_DOUBLE_EQ(Top.StateAt(Trace0 - 0.01, 0.0).Rho, 8.0);
  EXPECT_DOUBLE_EQ(Top.StateAt(Trace0 + 0.01, 0.0).Rho, 1.4);
  // The trace moves right at speed 20/sqrt(3): by t = 0.2 the point
  // that was pre-shock is behind the front.
  EXPECT_DOUBLE_EQ(Top.StateAt(Trace0 + 0.01, 0.2).Rho, 8.0);

  EXPECT_DOUBLE_EQ(P.EndTime, 0.2);
}

TEST(Problems, ShockBubbleLayout) {
  Problem<2> P = shockBubble2D(50);
  EXPECT_EQ(P.Name, "shock-bubble");
  EXPECT_EQ(P.Domain.cells(0), 100u);
  EXPECT_EQ(P.Domain.cells(1), 50u);

  // Three regions: post-shock inflow, light bubble, quiescent ambient.
  PostShockState Post = postShockState(2.0, 1.0, 1.0, P.G);
  Prim<2> In = P.InitialState({0.1, 0.5});
  EXPECT_NEAR(In.Rho, Post.Rho, 1e-12);
  EXPECT_NEAR(In.Vel[0], Post.U, 1e-12);
  Prim<2> Bubble = P.InitialState({0.8, 0.5});
  EXPECT_DOUBLE_EQ(Bubble.Rho, 0.1387);
  EXPECT_DOUBLE_EQ(Bubble.P, 1.0) << "pressure-matched bubble";
  Prim<2> Ambient = P.InitialState({1.5, 0.1});
  EXPECT_DOUBLE_EQ(Ambient.Rho, 1.0);
  EXPECT_DOUBLE_EQ(Ambient.Vel[0], 0.0);

  // Channel: inflow left, outflow right, walls top and bottom.
  EXPECT_EQ(P.Boundary.Side[boundarySide(0, false)].front().Kind,
            BcKind::Inflow);
  EXPECT_EQ(P.Boundary.Side[boundarySide(0, true)].front().Kind,
            BcKind::Transmissive);
  EXPECT_EQ(P.Boundary.Side[boundarySide(1, false)].front().Kind,
            BcKind::Reflective);
  EXPECT_EQ(P.Boundary.Side[boundarySide(1, true)].front().Kind,
            BcKind::Reflective);
  EXPECT_DOUBLE_EQ(P.EndTime, 0.4);
}

TEST(Problems, SmoothAdvectionExactSolutionsArePeriodic) {
  EXPECT_NEAR(smoothAdvectionDensity1D(0.3, 0.0),
              smoothAdvectionDensity1D(1.3, 0.0), 1e-12);
  EXPECT_NEAR(smoothAdvectionDensity1D(0.3, 1.0),
              smoothAdvectionDensity1D(0.3, 0.0), 1e-12)
      << "period-1 translation";
  EXPECT_NEAR(smoothAdvectionDensity2D(0.2, 0.7, 1.0),
              smoothAdvectionDensity2D(0.2, 0.7, 0.0), 1e-12);
}

TEST(Problems, IsentropicVortexExactFreeStreamFarField) {
  // Far from the core the state approaches the (1,1,1,1) free stream.
  Prim<2> Far = isentropicVortexExact(0.2, 0.2, 0.0); // core at (5,5)
  EXPECT_NEAR(Far.Rho, 1.0, 1e-4);
  EXPECT_NEAR(Far.Vel[0], 1.0, 1e-3);
  EXPECT_NEAR(Far.Vel[1], 1.0, 1e-3);
  EXPECT_NEAR(Far.P, 1.0, 1e-4);

  // At the core center the velocity equals the free stream and the
  // density dips.
  Prim<2> Core = isentropicVortexExact(5.0, 5.0, 0.0);
  EXPECT_NEAR(Core.Vel[0], 1.0, 1e-12);
  EXPECT_NEAR(Core.Vel[1], 1.0, 1e-12);
  EXPECT_LT(Core.Rho, 0.6);
}

TEST(Problems, IsentropicVortexTranslatesWithPeriodicWrap) {
  // After t = 10 the vortex has crossed the periodic box exactly once.
  Prim<2> A = isentropicVortexExact(3.0, 7.0, 0.0);
  Prim<2> B = isentropicVortexExact(3.0, 7.0, 10.0);
  EXPECT_NEAR(A.Rho, B.Rho, 1e-12);
  EXPECT_NEAR(A.Vel[0], B.Vel[0], 1e-12);
  EXPECT_NEAR(A.P, B.P, 1e-12);
}

TEST(Problems, SodExtruded3DGeometry) {
  Problem<3> P = sodExtruded3D(32, 4);
  EXPECT_EQ(P.Domain.cells(0), 32u);
  EXPECT_EQ(P.Domain.cells(1), 4u);
  EXPECT_EQ(P.Domain.cells(2), 4u);
  // Cubic cells: dx = dy = dz.
  EXPECT_NEAR(P.Domain.dx(0), P.Domain.dx(1), 1e-15);
  EXPECT_NEAR(P.Domain.dx(0), P.Domain.dx(2), 1e-15);
  // x-dependence only.
  Prim<3> A = P.InitialState({0.2, 0.01, 0.09});
  Prim<3> B = P.InitialState({0.2, 0.11, 0.02});
  EXPECT_EQ(A.Rho, B.Rho);
}

TEST(Problems, UniformFlowsAreActuallyUniform) {
  Problem<1> P1 = uniformFlow1D(8);
  Problem<2> P2 = uniformFlow2D(8);
  Problem<3> P3 = uniformFlow3D(8);
  EXPECT_EQ(P1.InitialState({0.1}).Rho, P1.InitialState({0.9}).Rho);
  EXPECT_EQ(P2.InitialState({0.1, 0.2}).P,
            P2.InitialState({0.8, 0.6}).P);
  EXPECT_EQ(P3.InitialState({0.1, 0.2, 0.3}).Vel[2],
            P3.InitialState({0.9, 0.8, 0.7}).Vel[2]);
}
