//===- tests/ProblemsTest.cpp - Workload factory unit tests ----------------===//

#include "euler/RankineHugoniot.h"
#include "solver/Problems.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace sacfd;

TEST(Problems, SodInitialStates) {
  Problem<1> P = sodProblem(100);
  EXPECT_EQ(P.Name, "sod");
  EXPECT_EQ(P.Domain.cells(0), 100u);
  Prim<1> Left = P.InitialState({0.25});
  Prim<1> Right = P.InitialState({0.75});
  EXPECT_EQ(Left.Rho, 1.0);
  EXPECT_EQ(Left.P, 1.0);
  EXPECT_EQ(Right.Rho, 0.125);
  EXPECT_EQ(Right.P, 0.1);
  EXPECT_DOUBLE_EQ(P.EndTime, 0.2);
  EXPECT_EQ(P.Boundary.Side[0].front().Kind, BcKind::Transmissive);
}

TEST(Problems, BlastWavesHasReflectiveWallsAndThreeZones) {
  Problem<1> P = blastWavesProblem(100);
  EXPECT_EQ(P.Boundary.Side[0].front().Kind, BcKind::Reflective);
  EXPECT_EQ(P.Boundary.Side[1].front().Kind, BcKind::Reflective);
  EXPECT_EQ(P.InitialState({0.05}).P, 1000.0);
  EXPECT_EQ(P.InitialState({0.5}).P, 0.01);
  EXPECT_EQ(P.InitialState({0.95}).P, 100.0);
}

TEST(Problems, ShockInteractionBoundaryLayout) {
  double H = 50.0, Ms = 2.2;
  Problem<2> P = shockInteraction2D(100, Ms, H);
  // Domain is 2h x 2h with dx = 1.
  EXPECT_DOUBLE_EQ(P.Domain.hi(0), 2.0 * H);
  EXPECT_DOUBLE_EQ(P.Domain.dx(0), 1.0);

  // Left side: inflow below y = h, wall above.
  const auto &Left = P.Boundary.Side[boundarySide(0, false)];
  ASSERT_EQ(Left.size(), 2u);
  EXPECT_EQ(Left[0].Kind, BcKind::Inflow);
  EXPECT_EQ(Left[1].Kind, BcKind::Reflective);
  EXPECT_DOUBLE_EQ(Left[0].TangentialHi, H);

  // The inflow state is the Rankine-Hugoniot post-shock state along +x.
  PostShockState Post = postShockState(Ms, 1.0, 1.0, P.G);
  Prim<2> In = toPrim(Left[0].InflowState, P.G);
  EXPECT_NEAR(In.Rho, Post.Rho, 1e-13);
  EXPECT_NEAR(In.Vel[0], Post.U, 1e-13);
  EXPECT_NEAR(In.Vel[1], 0.0, 1e-13);
  EXPECT_NEAR(In.P, Post.P, 1e-13);

  // Bottom mirrors it along +y; right/top are open.
  const auto &Bottom = P.Boundary.Side[boundarySide(1, false)];
  Prim<2> InB = toPrim(Bottom[0].InflowState, P.G);
  EXPECT_NEAR(InB.Vel[1], Post.U, 1e-13);
  EXPECT_EQ(P.Boundary.Side[boundarySide(0, true)].front().Kind,
            BcKind::Transmissive);
  EXPECT_EQ(P.Boundary.Side[boundarySide(1, true)].front().Kind,
            BcKind::Transmissive);

  // EndTime is the transit time h / (Ms c0).
  double C0 = P.G.soundSpeed(1.0, 1.0);
  EXPECT_NEAR(P.EndTime, H / (Ms * C0), 1e-12);
}

TEST(Problems, Riemann2DConfigurationSelection) {
  Problem<2> C4 = riemann2D(16);
  EXPECT_EQ(C4.Name, "riemann-2d-c4");
  Problem<2> C6 = riemann2D(16, 2, 6);
  EXPECT_EQ(C6.Name, "riemann-2d-c6");
  EXPECT_DOUBLE_EQ(C6.EndTime, 0.3);
  Problem<2> C12 = riemann2D(16, 2, 12);
  EXPECT_EQ(C12.Name, "riemann-2d-c12");

  // Config 6 is all-contacts: pressure uniform everywhere.
  for (double X : {0.25, 0.75})
    for (double Y : {0.25, 0.75})
      EXPECT_DOUBLE_EQ(C6.InitialState({X, Y}).P, 1.0);
  // Config 4 quadrants differ in pressure.
  EXPECT_NE(C4.InitialState({0.75, 0.75}).P,
            C4.InitialState({0.25, 0.75}).P);
}

TEST(Problems, SmoothAdvectionExactSolutionsArePeriodic) {
  EXPECT_NEAR(smoothAdvectionDensity1D(0.3, 0.0),
              smoothAdvectionDensity1D(1.3, 0.0), 1e-12);
  EXPECT_NEAR(smoothAdvectionDensity1D(0.3, 1.0),
              smoothAdvectionDensity1D(0.3, 0.0), 1e-12)
      << "period-1 translation";
  EXPECT_NEAR(smoothAdvectionDensity2D(0.2, 0.7, 1.0),
              smoothAdvectionDensity2D(0.2, 0.7, 0.0), 1e-12);
}

TEST(Problems, IsentropicVortexExactFreeStreamFarField) {
  // Far from the core the state approaches the (1,1,1,1) free stream.
  Prim<2> Far = isentropicVortexExact(0.2, 0.2, 0.0); // core at (5,5)
  EXPECT_NEAR(Far.Rho, 1.0, 1e-4);
  EXPECT_NEAR(Far.Vel[0], 1.0, 1e-3);
  EXPECT_NEAR(Far.Vel[1], 1.0, 1e-3);
  EXPECT_NEAR(Far.P, 1.0, 1e-4);

  // At the core center the velocity equals the free stream and the
  // density dips.
  Prim<2> Core = isentropicVortexExact(5.0, 5.0, 0.0);
  EXPECT_NEAR(Core.Vel[0], 1.0, 1e-12);
  EXPECT_NEAR(Core.Vel[1], 1.0, 1e-12);
  EXPECT_LT(Core.Rho, 0.6);
}

TEST(Problems, IsentropicVortexTranslatesWithPeriodicWrap) {
  // After t = 10 the vortex has crossed the periodic box exactly once.
  Prim<2> A = isentropicVortexExact(3.0, 7.0, 0.0);
  Prim<2> B = isentropicVortexExact(3.0, 7.0, 10.0);
  EXPECT_NEAR(A.Rho, B.Rho, 1e-12);
  EXPECT_NEAR(A.Vel[0], B.Vel[0], 1e-12);
  EXPECT_NEAR(A.P, B.P, 1e-12);
}

TEST(Problems, SodExtruded3DGeometry) {
  Problem<3> P = sodExtruded3D(32, 4);
  EXPECT_EQ(P.Domain.cells(0), 32u);
  EXPECT_EQ(P.Domain.cells(1), 4u);
  EXPECT_EQ(P.Domain.cells(2), 4u);
  // Cubic cells: dx = dy = dz.
  EXPECT_NEAR(P.Domain.dx(0), P.Domain.dx(1), 1e-15);
  EXPECT_NEAR(P.Domain.dx(0), P.Domain.dx(2), 1e-15);
  // x-dependence only.
  Prim<3> A = P.InitialState({0.2, 0.01, 0.09});
  Prim<3> B = P.InitialState({0.2, 0.11, 0.02});
  EXPECT_EQ(A.Rho, B.Rho);
}

TEST(Problems, UniformFlowsAreActuallyUniform) {
  Problem<1> P1 = uniformFlow1D(8);
  Problem<2> P2 = uniformFlow2D(8);
  Problem<3> P3 = uniformFlow3D(8);
  EXPECT_EQ(P1.InitialState({0.1}).Rho, P1.InitialState({0.9}).Rho);
  EXPECT_EQ(P2.InitialState({0.1, 0.2}).P,
            P2.InitialState({0.8, 0.6}).P);
  EXPECT_EQ(P3.InitialState({0.1, 0.2, 0.3}).Vel[2],
            P3.InitialState({0.9, 0.8, 0.7}).Vel[2]);
}
