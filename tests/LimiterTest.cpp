//===- tests/LimiterTest.cpp - Slope limiter property tests ---------------===//

#include "numerics/Limiters.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace sacfd;

namespace {

const LimiterKind AllLimiters[] = {LimiterKind::MinMod, LimiterKind::Superbee,
                                   LimiterKind::VanLeer, LimiterKind::Mc};

class LimiterPropertyTest : public ::testing::TestWithParam<LimiterKind> {};

std::vector<std::pair<double, double>> samplePairs() {
  std::vector<std::pair<double, double>> Pairs;
  const double Values[] = {-3.0, -1.0, -0.25, 0.0, 0.1, 0.5, 1.0, 2.0, 7.5};
  for (double A : Values)
    for (double B : Values)
      Pairs.emplace_back(A, B);
  return Pairs;
}

} // namespace

TEST_P(LimiterPropertyTest, VanishesAtExtrema) {
  // Opposite-sign differences mark a local extremum: slope must be zero.
  LimiterKind K = GetParam();
  EXPECT_EQ(limitedSlope(K, 1.0, -1.0), 0.0);
  EXPECT_EQ(limitedSlope(K, -0.5, 2.0), 0.0);
  EXPECT_EQ(limitedSlope(K, 0.0, 1.0), 0.0);
  EXPECT_EQ(limitedSlope(K, 1.0, 0.0), 0.0);
  EXPECT_EQ(limitedSlope(K, 0.0, 0.0), 0.0);
}

TEST_P(LimiterPropertyTest, IsSymmetric) {
  LimiterKind K = GetParam();
  for (auto [A, B] : samplePairs())
    EXPECT_DOUBLE_EQ(limitedSlope(K, A, B), limitedSlope(K, B, A))
        << "a=" << A << " b=" << B;
}

TEST_P(LimiterPropertyTest, IsPositivelyHomogeneous) {
  LimiterKind K = GetParam();
  for (auto [A, B] : samplePairs())
    for (double S : {0.5, 2.0, 10.0})
      EXPECT_NEAR(limitedSlope(K, S * A, S * B), S * limitedSlope(K, A, B),
                  1e-12 * (1.0 + std::fabs(A) + std::fabs(B)) * S);
}

TEST_P(LimiterPropertyTest, ReproducesUniformSlopes) {
  // Equal differences (smooth linear data) pass through unchanged.
  LimiterKind K = GetParam();
  for (double S : {-2.0, -0.5, 0.25, 1.0, 3.0})
    EXPECT_NEAR(limitedSlope(K, S, S), S, 1e-14);
}

TEST_P(LimiterPropertyTest, BoundedBetweenMinmodAndSuperbee) {
  // The classical second-order TVD region: every limiter's magnitude lies
  // between minmod (lower) and superbee (upper).
  LimiterKind K = GetParam();
  for (auto [A, B] : samplePairs()) {
    double Phi = limitedSlope(K, A, B);
    double Lo = minmod(A, B);
    double Hi = superbee(A, B);
    EXPECT_GE(std::fabs(Phi), std::fabs(Lo) - 1e-13)
        << limiterKindName(K) << " a=" << A << " b=" << B;
    EXPECT_LE(std::fabs(Phi), std::fabs(Hi) + 1e-13)
        << limiterKindName(K) << " a=" << A << " b=" << B;
    // Never flips sign relative to the input differences.
    if (A * B > 0.0) {
      EXPECT_GE(Phi * A, 0.0);
    }
  }
}

TEST_P(LimiterPropertyTest, SecondOrderTvdBound) {
  // |phi| <= 2 min(|a|, |b|) — Sweby's TVD region upper edge.
  LimiterKind K = GetParam();
  for (auto [A, B] : samplePairs()) {
    double Phi = limitedSlope(K, A, B);
    double Bound = 2.0 * std::min(std::fabs(A), std::fabs(B));
    EXPECT_LE(std::fabs(Phi), Bound + 1e-13)
        << limiterKindName(K) << " a=" << A << " b=" << B;
  }
}

INSTANTIATE_TEST_SUITE_P(AllLimiters, LimiterPropertyTest,
                         ::testing::ValuesIn(AllLimiters),
                         [](const ::testing::TestParamInfo<LimiterKind> &I) {
                           return limiterKindName(I.param);
                         });

//===----------------------------------------------------------------------===//
// Specific limiter values
//===----------------------------------------------------------------------===//

TEST(Limiters, MinmodPicksSmallerMagnitude) {
  EXPECT_EQ(minmod(1.0, 2.0), 1.0);
  EXPECT_EQ(minmod(2.0, 1.0), 1.0);
  EXPECT_EQ(minmod(-1.0, -3.0), -1.0);
}

TEST(Limiters, SuperbeeKnownValues) {
  // r = 0.5: superbee = 2r = 1 => phi(1, 0.5)... in slope form:
  // superbee(1, 0.5) = max(minmod(2, 0.5), minmod(1, 1)) = 1.
  EXPECT_DOUBLE_EQ(superbee(1.0, 0.5), 1.0);
  // a = b: passes through.
  EXPECT_DOUBLE_EQ(superbee(2.0, 2.0), 2.0);
  // r = 2: superbee picks 2a vs b: max(minmod(2,2), minmod(1,4)) = 2.
  EXPECT_DOUBLE_EQ(superbee(1.0, 2.0), 2.0);
}

TEST(Limiters, VanLeerIsHarmonicMean) {
  EXPECT_DOUBLE_EQ(vanLeer(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(vanLeer(1.0, 3.0), 1.5);
  EXPECT_DOUBLE_EQ(vanLeer(-1.0, -3.0), -1.5);
}

TEST(Limiters, McCentersSmoothData) {
  // mc(a, b) = (a+b)/2 when the central slope is within 2a, 2b.
  EXPECT_DOUBLE_EQ(monotonizedCentral(1.0, 1.5), 1.25);
  // Clips to 2*min when the jump is one-sided.
  EXPECT_DOUBLE_EQ(monotonizedCentral(0.1, 10.0), 0.2);
}

TEST(Limiters, Minmod3TakesSmallest) {
  EXPECT_EQ(minmod3(3.0, 2.0, 1.0), 1.0);
  EXPECT_EQ(minmod3(-3.0, -2.0, -1.0), -1.0);
  EXPECT_EQ(minmod3(1.0, -2.0, 3.0), 0.0);
}

TEST(Limiters, NameParsingRoundTrip) {
  for (LimiterKind K : AllLimiters)
    EXPECT_EQ(parseLimiterKind(limiterKindName(K)), K);
  EXPECT_FALSE(parseLimiterKind("koren").has_value());
}
