//===- tests/TelemetryTest.cpp - Telemetry subsystem unit tests -----------===//
//
// Spans, counters, gauges: registration, thread-local accumulation and
// retirement, snapshot/reset semantics, gauge stride gating, the JSON and
// CSV exporters, and the backend region spans end to end on a real run.
//
//===----------------------------------------------------------------------===//

#include "io/TelemetryExport.h"
#include "runtime/Runtime.h"
#include "solver/ArraySolver.h"
#include "solver/Problems.h"
#include "telemetry/Telemetry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

using namespace sacfd;

namespace {

/// Every test starts from a clean, enabled slate and leaves telemetry
/// disabled (the binary-global default the other test suites assume).
class TelemetryTest : public ::testing::Test {
protected:
  void SetUp() override {
    telemetry::reset();
    telemetry::setGaugeStride(1);
    telemetry::setEnabled(true);
  }
  void TearDown() override {
    telemetry::setEnabled(false);
    telemetry::reset();
  }
};

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

} // namespace

TEST_F(TelemetryTest, RegistrationIdsAreStable) {
  unsigned A = telemetry::counterId("test.reg.a");
  unsigned B = telemetry::counterId("test.reg.b");
  EXPECT_NE(A, B);
  EXPECT_EQ(A, telemetry::counterId("test.reg.a"));
  EXPECT_EQ(B, telemetry::counterId("test.reg.b"));
  // Span/counter/gauge namespaces are independent.
  EXPECT_EQ(telemetry::spanId("test.reg.a"),
            telemetry::spanId("test.reg.a"));
  EXPECT_EQ(telemetry::gaugeId("test.reg.a"),
            telemetry::gaugeId("test.reg.a"));
}

TEST_F(TelemetryTest, DisabledProbesRecordNothing) {
  telemetry::setEnabled(false);
  unsigned C = telemetry::counterId("test.disabled.counter");
  unsigned S = telemetry::spanId("test.disabled.span");
  unsigned G = telemetry::gaugeId("test.disabled.gauge");
  telemetry::addCounter(C, 7);
  { telemetry::ScopedSpan Span(S); }
  telemetry::recordGauge(G, 0, 1.0);
  EXPECT_FALSE(telemetry::gaugeDue(0));

  telemetry::MetricsReport R = telemetry::snapshot();
  EXPECT_EQ(R.findCounter("test.disabled.counter"), nullptr);
  EXPECT_EQ(R.findSpan("test.disabled.span"), nullptr);
  EXPECT_EQ(R.findGauge("test.disabled.gauge"), nullptr);
}

TEST_F(TelemetryTest, CountersAccumulateAndSurviveThreadExit) {
  unsigned Id = telemetry::counterId("test.threads.counter");
  // Transient threads model the fork-join backend's per-region teams:
  // their buffers must fold into the retired store on exit.
  std::vector<std::thread> Team;
  for (int T = 0; T < 4; ++T)
    Team.emplace_back([Id] {
      for (int I = 0; I < 1000; ++I)
        telemetry::addCounter(Id);
    });
  for (std::thread &T : Team)
    T.join();
  telemetry::addCounter(Id, 5);

  telemetry::MetricsReport R = telemetry::snapshot();
  const telemetry::CounterTotal *C = R.findCounter("test.threads.counter");
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->Total, 4005u);
}

TEST_F(TelemetryTest, SpanStatsAggregate) {
  unsigned Id = telemetry::spanId("test.span.stats");
  for (int I = 0; I < 3; ++I)
    telemetry::ScopedSpan Span(Id);

  telemetry::MetricsReport R = telemetry::snapshot();
  const telemetry::SpanStats *S = R.findSpan("test.span.stats");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Count, 3u);
  EXPECT_LE(S->MinNs, S->MaxNs);
  EXPECT_GE(S->TotalNs, S->MaxNs);
  EXPECT_GE(S->meanNs(), static_cast<double>(S->MinNs));
  EXPECT_LE(S->meanNs(), static_cast<double>(S->MaxNs));
}

TEST_F(TelemetryTest, GaugeStrideGatesSampling) {
  telemetry::setGaugeStride(4);
  EXPECT_TRUE(telemetry::gaugeDue(0));
  EXPECT_FALSE(telemetry::gaugeDue(1));
  EXPECT_TRUE(telemetry::gaugeDue(4));
  EXPECT_FALSE(telemetry::gaugeDue(7));

  telemetry::setGaugeStride(0);
  EXPECT_FALSE(telemetry::gaugeDue(0));
  EXPECT_FALSE(telemetry::gaugeDue(4));
}

TEST_F(TelemetryTest, GaugeSeriesAndDrift) {
  unsigned Id = telemetry::gaugeId("test.gauge.drift");
  telemetry::recordGauge(Id, 0, 100.0);
  telemetry::recordGauge(Id, 1, 101.0);
  telemetry::recordGauge(Id, 2, 99.5);

  telemetry::MetricsReport R = telemetry::snapshot();
  const telemetry::GaugeSeries *G = R.findGauge("test.gauge.drift");
  ASSERT_NE(G, nullptr);
  ASSERT_EQ(G->Samples.size(), 3u);
  EXPECT_EQ(G->first(), 100.0);
  EXPECT_EQ(G->last(), 99.5);
  EXPECT_DOUBLE_EQ(G->maxRelativeDrift(), 0.01);
}

TEST_F(TelemetryTest, SnapshotSortsByNameAndResetClears) {
  telemetry::addCounter(telemetry::counterId("test.sort.b"));
  telemetry::addCounter(telemetry::counterId("test.sort.a"));
  telemetry::MetricsReport R = telemetry::snapshot();
  ASSERT_GE(R.Counters.size(), 2u);
  for (size_t I = 1; I < R.Counters.size(); ++I)
    EXPECT_LT(R.Counters[I - 1].Name, R.Counters[I].Name);

  telemetry::reset();
  R = telemetry::snapshot();
  EXPECT_TRUE(R.Counters.empty());
  EXPECT_TRUE(R.Spans.empty());
  EXPECT_TRUE(R.Gauges.empty());
}

TEST_F(TelemetryTest, BackendRegionSpansAndCounterMatchDispatchCount) {
  for (BackendKind K :
       {BackendKind::Serial, BackendKind::ForkJoin, BackendKind::SpinPool}) {
    telemetry::reset();
    auto Exec = createBackend(K, K == BackendKind::Serial ? 1 : 2);
    ArraySolver<1> S(sodProblem(64), SchemeConfig::benchmarkScheme(),
                     *Exec);
    S.advanceSteps(3);

    const char *SpanName = K == BackendKind::Serial     ? "region.serial"
                           : K == BackendKind::ForkJoin ? "region.fork_join"
                                                        : "region.spin_pool";
    telemetry::MetricsReport R = telemetry::snapshot();
    const telemetry::SpanStats *Span = R.findSpan(SpanName);
    ASSERT_NE(Span, nullptr) << SpanName;
    EXPECT_EQ(Span->Count, Exec->regionsDispatched()) << SpanName;

    const telemetry::CounterTotal *Regions =
        R.findCounter("runtime.regions");
    ASSERT_NE(Regions, nullptr);
    EXPECT_EQ(Regions->Total, Exec->regionsDispatched());

    const telemetry::CounterTotal *Steps = R.findCounter("solver.steps");
    ASSERT_NE(Steps, nullptr);
    EXPECT_EQ(Steps->Total, 3u);
  }
}

TEST_F(TelemetryTest, SolverStageSpansAndGaugesAppear) {
  auto Exec = createBackend(BackendKind::Serial, 1);
  ArraySolver<2> S(shockInteraction2D(16, 2.2, 8.0),
                   SchemeConfig::benchmarkScheme(), *Exec);
  S.advanceSteps(2);

  telemetry::MetricsReport R = telemetry::snapshot();
  for (const char *Name : {"solver.get_dt", "solver.snapshot",
                           "solver.boundary", "solver.flux",
                           "solver.update"})
    EXPECT_NE(R.findSpan(Name), nullptr) << Name;
  for (const char *Name : {"step.dt", "step.max_eigen", "step.mass",
                           "step.momentum0", "step.momentum1",
                           "step.energy"}) {
    const telemetry::GaugeSeries *G = R.findGauge(Name);
    ASSERT_NE(G, nullptr) << Name;
    EXPECT_EQ(G->Samples.size(), 2u) << Name;
  }
}

TEST_F(TelemetryTest, JsonExportHasSchemaMetaAndData) {
  telemetry::addCounter(telemetry::counterId("test.json.counter"), 42);
  { telemetry::ScopedSpan Span(telemetry::spanId("test.json.span")); }
  telemetry::recordGauge(telemetry::gaugeId("test.json.gauge"), 5, 2.5);
  // JSON has no NaN literal; a poisoned-field sample must become null.
  telemetry::recordGauge(telemetry::gaugeId("test.json.gauge"), 6,
                         std::nan(""));

  std::string Path = "telemetry_test_export.json";
  ASSERT_TRUE(writeTelemetryJson(Path, telemetry::snapshot(),
                                 {{"program", "TelemetryTest"},
                                  {"quoted \"key\"", "line\nbreak"}}));
  std::string Json = slurp(Path);
  std::remove(Path.c_str());

  EXPECT_NE(Json.find("\"schema\": \"sacfd-telemetry-1\""),
            std::string::npos);
  EXPECT_NE(Json.find("\"program\": \"TelemetryTest\""), std::string::npos);
  EXPECT_NE(Json.find("\\\"key\\\""), std::string::npos) << "escaping";
  EXPECT_NE(Json.find("line\\nbreak"), std::string::npos) << "escaping";
  EXPECT_NE(Json.find("\"test.json.counter\", \"total\": 42"),
            std::string::npos);
  EXPECT_NE(Json.find("\"test.json.span\""), std::string::npos);
  EXPECT_NE(Json.find("{\"step\": 5, \"value\": 2.5}"), std::string::npos);
  EXPECT_NE(Json.find("{\"step\": 6, \"value\": null}"), std::string::npos);
  EXPECT_EQ(Json.find("nan"), std::string::npos);
}

TEST_F(TelemetryTest, ExportCreatesMissingOutputDirectory) {
  // --telemetry-json pointed at a not-yet-existing directory must not
  // lose the run's telemetry at exit: the exporter creates the path.
  telemetry::addCounter(telemetry::counterId("test.dir.counter"), 1);
  std::string Base = std::string(::testing::TempDir()) + "/telemetry-new-dir";
  std::filesystem::remove_all(Base);
  std::string JsonPath = Base + "/a/run.json";
  std::string CsvPath = Base + "/b/run.csv";
  std::string Error;
  ASSERT_TRUE(writeTelemetryJson(JsonPath, telemetry::snapshot(), {}, &Error))
      << Error;
  ASSERT_TRUE(writeTelemetryCsv(CsvPath, telemetry::snapshot(), &Error))
      << Error;
  EXPECT_NE(slurp(JsonPath).find("sacfd-telemetry-1"), std::string::npos);
  EXPECT_NE(slurp(CsvPath).find("kind,name"), std::string::npos);
  std::filesystem::remove_all(Base);
}

TEST_F(TelemetryTest, ExportErrorNamesTheFailingPath) {
  // Parent blocked by a regular file: a structured error naming the
  // path, for both exporters.
  std::string Blocker = std::string(::testing::TempDir()) + "/telemetry-blocker";
  { std::ofstream(Blocker) << "x"; }
  std::string Path = Blocker + "/run.json";
  std::string Error;
  EXPECT_FALSE(writeTelemetryJson(Path, telemetry::snapshot(), {}, &Error));
  EXPECT_NE(Error.find("cannot create directory"), std::string::npos) << Error;
  EXPECT_NE(Error.find(Blocker), std::string::npos) << Error;
  Error.clear();
  EXPECT_FALSE(writeTelemetryCsv(Blocker + "/run.csv", telemetry::snapshot(),
                                 &Error));
  EXPECT_NE(Error.find(Blocker), std::string::npos) << Error;
  std::remove(Blocker.c_str());
}

TEST_F(TelemetryTest, CsvExportEmitsLongFormatRows) {
  telemetry::addCounter(telemetry::counterId("test.csv.counter"), 9);
  telemetry::recordGauge(telemetry::gaugeId("test.csv.gauge"), 1, 0.5);

  std::string Path = "telemetry_test_export.csv";
  ASSERT_TRUE(writeTelemetryCsv(Path, telemetry::snapshot()));
  std::string Csv = slurp(Path);
  std::remove(Path.c_str());

  EXPECT_NE(Csv.find("kind,name,count,total_ns,min_ns,max_ns,step,value"),
            std::string::npos);
  EXPECT_NE(Csv.find("counter,test.csv.counter,9"), std::string::npos);
  EXPECT_NE(Csv.find("gauge,test.csv.gauge,,,,,1,0.5"), std::string::npos);
}
