//===- tests/RankineHugoniotTest.cpp - Shock jump relation tests ----------===//

#include "euler/RankineHugoniot.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace sacfd;

TEST(RankineHugoniot, UnitMachShockIsIdentity) {
  Gas G;
  PostShockState S = postShockState(1.0, 1.0, 1.0, G);
  EXPECT_NEAR(S.Rho, 1.0, 1e-13);
  EXPECT_NEAR(S.P, 1.0, 1e-13);
  EXPECT_NEAR(S.U, 0.0, 1e-13);
}

TEST(RankineHugoniot, KnownMach2Values) {
  // Standard normal-shock table, gamma = 1.4, Ms = 2:
  // p2/p1 = 4.5, rho2/rho1 = 8/3.
  Gas G;
  PostShockState S = postShockState(2.0, 1.0, 1.0, G);
  EXPECT_NEAR(S.P, 4.5, 1e-12);
  EXPECT_NEAR(S.Rho, 8.0 / 3.0, 1e-12);
  // u1 = 2 c0 (Ms^2-1) / ((gamma+1) Ms) = 2*sqrt(1.4)*3 / (2.4*2).
  EXPECT_NEAR(S.U, 2.0 * std::sqrt(1.4) * 3.0 / (2.4 * 2.0), 1e-12);
}

TEST(RankineHugoniot, PaperMach22Configuration) {
  // The paper's Ms = 2.2 channel shock: the post-shock flow must be
  // supersonic so exit values stay frozen ("At this value of Ms the flow
  // behind the shock waves is supersonic").
  Gas G;
  double FlowMach = postShockFlowMach(2.2, 1.0, 1.0, G);
  EXPECT_GT(FlowMach, 1.0);

  // And a slow shock must give subsonic post-shock flow.
  EXPECT_LT(postShockFlowMach(1.2, 1.0, 1.0, G), 1.0);
}

class RankineHugoniotSweep : public ::testing::TestWithParam<double> {};

TEST_P(RankineHugoniotSweep, ConservationAcrossTheShock) {
  // Property: mass, momentum and enthalpy fluxes balance in the
  // shock-fixed frame for any Mach number.
  Gas G;
  double Ms = GetParam();
  PostShockState S = postShockState(Ms, 0.7, 1.3, G);
  JumpResiduals R = shockJumpResiduals(Ms, 0.7, 1.3, S, G);
  EXPECT_NEAR(R.Mass, 0.0, 1e-11);
  EXPECT_NEAR(R.Momentum, 0.0, 1e-11);
  EXPECT_NEAR(R.Energy, 0.0, 1e-10);
}

TEST_P(RankineHugoniotSweep, CompressionAndEntropyConditions) {
  Gas G;
  double Ms = GetParam();
  PostShockState S = postShockState(Ms, 1.0, 1.0, G);
  if (Ms > 1.0) {
    EXPECT_GT(S.P, 1.0) << "shocks compress";
    EXPECT_GT(S.Rho, 1.0);
    EXPECT_GT(S.U, 0.0) << "post-shock flow follows the shock";
    // Density ratio bounded by (gamma+1)/(gamma-1) = 6 for gamma = 1.4.
    EXPECT_LT(S.Rho, 6.0);
  }
}

INSTANTIATE_TEST_SUITE_P(MachSweep, RankineHugoniotSweep,
                         ::testing::Values(1.0, 1.1, 1.5, 2.0, 2.2, 3.0,
                                           5.0, 10.0));

TEST(RankineHugoniot, StrongShockDensityLimit) {
  Gas G;
  PostShockState S = postShockState(100.0, 1.0, 1.0, G);
  EXPECT_NEAR(S.Rho, 6.0, 1e-2) << "rho ratio -> (g+1)/(g-1) as Ms -> inf";
}

TEST(RankineHugoniot, InflowStateVectorIs2DAxisAligned) {
  Gas G;
  Prim<2> Quiescent;
  Quiescent.Rho = 1.0;
  Quiescent.Vel = {0.0, 0.0};
  Quiescent.P = 1.0;

  Prim<2> FromLeft = postShockInflow(2.2, Quiescent, 0, G);
  EXPECT_GT(FromLeft.Vel[0], 0.0);
  EXPECT_EQ(FromLeft.Vel[1], 0.0);

  Prim<2> FromBottom = postShockInflow(2.2, Quiescent, 1, G);
  EXPECT_EQ(FromBottom.Vel[0], 0.0);
  EXPECT_GT(FromBottom.Vel[1], 0.0);

  // Same scalar state on both axes.
  EXPECT_DOUBLE_EQ(FromLeft.Rho, FromBottom.Rho);
  EXPECT_DOUBLE_EQ(FromLeft.P, FromBottom.P);
}

TEST(RankineHugoniot, ScalesWithQuiescentState) {
  // Nondimensionalization: scaling (rho0, p0) scales (rho1, p1) by the
  // same factors and u by sqrt(p0/rho0).
  Gas G;
  PostShockState A = postShockState(2.2, 1.0, 1.0, G);
  PostShockState B = postShockState(2.2, 2.0, 8.0, G);
  EXPECT_NEAR(B.Rho / A.Rho, 2.0, 1e-12);
  EXPECT_NEAR(B.P / A.P, 8.0, 1e-12);
  EXPECT_NEAR(B.U / A.U, std::sqrt(8.0 / 2.0), 1e-12);
}
