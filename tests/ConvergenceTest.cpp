//===- tests/ConvergenceTest.cpp - Formal order verification --------------===//
//
// Smooth periodic advection has an exact translating solution, so the
// measured L1 convergence order of each reconstruction is a sharp
// end-to-end correctness check of the whole pipeline (reconstruction +
// characteristic projection + Riemann solver + SSP RK + periodic BCs).
//
//===----------------------------------------------------------------------===//

#include "runtime/SerialBackend.h"
#include "solver/ArraySolver.h"
#include "solver/Diagnostics.h"
#include "solver/Problems.h"
#include "solver/Scenario.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace sacfd;

namespace {

SerialBackend Exec;

/// L1 density error of an advanced 1D smooth-advection solver vs exact.
double l1AdvectionError(const ArraySolver<1> &S) {
  double Err = 0.0;
  const Grid<1> &G = S.problem().Domain;
  for (std::ptrdiff_t I = 0;
       I < static_cast<std::ptrdiff_t>(G.cells(0)); ++I) {
    double X = G.cellCenter(0, I);
    Err += std::fabs(S.primitiveAt(Index{I}).Rho -
                     smoothAdvectionDensity1D(X, S.time())) *
           G.dx(0);
  }
  return Err;
}

/// Runs the 1D smooth-advection problem and returns its L1 error at T.
double advectionError(ReconstructionKind Recon, size_t N, double T) {
  SchemeConfig C = SchemeConfig::figureScheme();
  C.Recon = Recon;
  C.Cfl = 0.4;
  ArraySolver<1> S(smoothAdvectionProblem(N), C, Exec);
  S.advanceTo(T);
  return l1AdvectionError(S);
}

double measuredOrder(ReconstructionKind Recon) {
  double ECoarse = advectionError(Recon, 32, 0.25);
  double EFine = advectionError(Recon, 64, 0.25);
  return std::log2(ECoarse / EFine);
}

} // namespace

TEST(Convergence, Pc1IsFirstOrder) {
  double Order = measuredOrder(ReconstructionKind::PiecewiseConstant);
  EXPECT_GT(Order, 0.6);
  EXPECT_LT(Order, 1.4);
}

TEST(Convergence, Tvd2AtLeastSecondOrderAwayFromExtremaClipping) {
  // Limiters clip at the sine extrema, costing a fraction of an order.
  double Order = measuredOrder(ReconstructionKind::Tvd2);
  EXPECT_GT(Order, 1.3);
}

TEST(Convergence, Weno3NearThirdOrder) {
  double Order = measuredOrder(ReconstructionKind::Weno3);
  EXPECT_GT(Order, 1.9);
}

TEST(Convergence, Weno5AtLeastThirdOrder) {
  // Spatial order 5 is masked by the RK3 time error at CFL 0.4, so the
  // observable bound is ~3.
  double Order = measuredOrder(ReconstructionKind::Weno5);
  EXPECT_GT(Order, 2.5);
}

TEST(Convergence, ErrorOrderingAtFixedResolution) {
  double EPc = advectionError(ReconstructionKind::PiecewiseConstant, 64,
                              0.25);
  double ETvd = advectionError(ReconstructionKind::Tvd2, 64, 0.25);
  double EW3 = advectionError(ReconstructionKind::Weno3, 64, 0.25);
  double EW5 = advectionError(ReconstructionKind::Weno5, 64, 0.25);
  EXPECT_GT(EPc, ETvd);
  EXPECT_GT(ETvd, EW3);
  EXPECT_GT(EW3, EW5);
}

TEST(Convergence, PeriodicDomainConservesEverything) {
  // On a periodic domain all conserved integrals are exact invariants
  // (fluxes cancel in pairs).
  SchemeConfig C = SchemeConfig::figureScheme();
  ArraySolver<1> S(smoothAdvectionProblem(64), C, Exec);
  ConservedTotals<1> Before = conservedTotals(S);
  S.advanceSteps(40);
  ConservedTotals<1> After = conservedTotals(S);
  EXPECT_NEAR(After.Mass, Before.Mass, 1e-13 * Before.Mass);
  EXPECT_NEAR(After.Momentum[0], Before.Momentum[0],
              1e-13 * std::fabs(Before.Momentum[0]));
  EXPECT_NEAR(After.Energy, Before.Energy, 1e-13 * Before.Energy);
}

TEST(Convergence, PeriodicWaveReturnsAfterFullPeriod) {
  // After t = 1 the wave is back where it started; WENO5 at N=64 should
  // be close to the initial condition.
  SchemeConfig C = SchemeConfig::figureScheme();
  C.Recon = ReconstructionKind::Weno5;
  ArraySolver<1> S(smoothAdvectionProblem(64), C, Exec);
  S.advanceTo(1.0);
  EXPECT_LT(l1AdvectionError(S), 5e-3);
}

TEST(Convergence, SmoothAdvection2DDiagonal) {
  SchemeConfig C = SchemeConfig::figureScheme();
  ArraySolver<2> S(smoothAdvection2D(32), C, Exec);
  S.advanceTo(0.2);
  double Err = 0.0;
  const Grid<2> &G = S.problem().Domain;
  for (std::ptrdiff_t I = 0; I < 32; ++I)
    for (std::ptrdiff_t J = 0; J < 32; ++J) {
      double X = G.cellCenter(0, I), Y = G.cellCenter(1, J);
      Err += std::fabs(S.primitiveAt(Index{I, J}).Rho -
                       smoothAdvectionDensity2D(X, Y, 0.2)) *
             G.dx(0) * G.dx(1);
    }
  EXPECT_LT(Err, 4e-3);
  // And mass stays exact on the doubly periodic box.
  ConservedTotals<2> T = conservedTotals(S);
  EXPECT_NEAR(T.Mass, 1.0, 1e-12);
}

namespace {

/// L1 density error of the isentropic vortex at the solver's time.
double vortexError(const ArraySolver<2> &S) {
  const Grid<2> &G = S.problem().Domain;
  double Err = 0.0;
  std::ptrdiff_t N = static_cast<std::ptrdiff_t>(G.cells(0));
  for (std::ptrdiff_t I = 0; I < N; ++I)
    for (std::ptrdiff_t J = 0; J < N; ++J) {
      Prim<2> Exact = isentropicVortexExact(
          G.cellCenter(0, I), G.cellCenter(1, J), S.time());
      Err += std::fabs(S.primitiveAt(Index{I, J}).Rho - Exact.Rho) *
             G.dx(0) * G.dx(1);
    }
  return Err;
}

double vortexErrorAt(ReconstructionKind Recon, size_t N, double T) {
  SchemeConfig C = SchemeConfig::figureScheme();
  C.Recon = Recon;
  C.Cfl = 0.4;
  ArraySolver<2> S(isentropicVortex2D(N), C, Exec);
  S.advanceTo(T);
  return vortexError(S);
}

} // namespace

TEST(Convergence, IsentropicVortexInitialStateIsExact) {
  SchemeConfig C = SchemeConfig::figureScheme();
  ArraySolver<2> S(isentropicVortex2D(32), C, Exec);
  EXPECT_LT(vortexError(S), 1e-12) << "t = 0: initialization error only";
}

TEST(Convergence, IsentropicVortexSecondOrderPlus) {
  // The standard 2D order test on the full Euler system.  The vortex
  // core spans ~2 length units, so 32 cells over [0, 10] is the coarsest
  // grid inside the asymptotic range.
  double ECoarse = vortexErrorAt(ReconstructionKind::Weno3, 32, 0.5);
  double EFine = vortexErrorAt(ReconstructionKind::Weno3, 64, 0.5);
  double Order = std::log2(ECoarse / EFine);
  EXPECT_GT(Order, 1.8) << "E(32)=" << ECoarse << " E(64)=" << EFine;
}

TEST(Convergence, IsentropicVortexConservesEverything) {
  SchemeConfig C = SchemeConfig::figureScheme();
  ArraySolver<2> S(isentropicVortex2D(24), C, Exec);
  ConservedTotals<2> Before = conservedTotals(S);
  S.advanceSteps(15);
  ConservedTotals<2> After = conservedTotals(S);
  EXPECT_NEAR(After.Mass, Before.Mass, 1e-12 * Before.Mass);
  EXPECT_NEAR(After.Energy, Before.Energy, 1e-12 * Before.Energy);
  EXPECT_NEAR(After.Momentum[0], Before.Momentum[0],
              1e-12 * std::fabs(Before.Momentum[0]));
}

namespace {

/// Builds a gallery workload at \p Cells through the scenario registry
/// (the same path --scenario takes) for the order studies below.
template <unsigned Dim>
Problem<Dim> scenarioProblem(const std::string &Name, size_t Cells,
                             const SchemeConfig &C) {
  SpecParse<ScenarioSpec> Spec =
      ScenarioSpec::parse(Name + ":cells=" + std::to_string(Cells));
  EXPECT_TRUE(Spec) << Spec.Error;
  SpecParse<Problem<Dim>> P =
      ScenarioRegistry::instance().buildProblem<Dim>(*Spec.Value, C);
  EXPECT_TRUE(P) << P.Error;
  return std::move(*P.Value);
}

} // namespace

TEST(Convergence, ScenarioBuiltAdvectionConverges) {
  // The sinusoidal-advection workload selected through the registry must
  // show the same refinement behavior as the direct factory: the gallery
  // path may not perturb the numerics.
  SchemeConfig C = SchemeConfig::figureScheme();
  C.Cfl = 0.4;
  auto ErrorAt = [&](size_t N) {
    ArraySolver<1> S(scenarioProblem<1>("smooth-advection", N, C), C, Exec);
    S.advanceTo(0.25);
    return l1AdvectionError(S);
  };
  double Order = std::log2(ErrorAt(32) / ErrorAt(64));
  EXPECT_GT(Order, 1.9) << "WENO3 under refinement via --scenario";
}

TEST(Convergence, ScenarioBuiltVortexConverges) {
  SchemeConfig C = SchemeConfig::figureScheme();
  C.Cfl = 0.4;
  auto ErrorAt = [&](size_t N) {
    ArraySolver<2> S(scenarioProblem<2>("isentropic-vortex", N, C), C, Exec);
    S.advanceTo(0.5);
    return vortexError(S);
  };
  double Order = std::log2(ErrorAt(32) / ErrorAt(64));
  EXPECT_GT(Order, 1.8) << "Euler order test via --scenario";
}

TEST(Convergence, ScenarioBuildMatchesDirectFactory) {
  // Bit-for-bit: registry-built and factory-built runs of the same
  // workload hash identically after the same number of steps.
  SchemeConfig C = SchemeConfig::figureScheme();
  ArraySolver<2> ViaRegistry(scenarioProblem<2>("isentropic-vortex", 24, C),
                             C, Exec);
  ArraySolver<2> ViaFactory(isentropicVortex2D(24), C, Exec);
  ViaRegistry.advanceSteps(10);
  ViaFactory.advanceSteps(10);
  EXPECT_EQ(fieldStateHash(ViaRegistry), fieldStateHash(ViaFactory));
}

TEST(Convergence, Weno5BeatsWeno3OnSod) {
  // Discontinuous case: WENO5 should still not lose to WENO3.
  SchemeConfig C5 = SchemeConfig::figureScheme();
  C5.Recon = ReconstructionKind::Weno5;
  SchemeConfig C3 = SchemeConfig::figureScheme();

  Prim<1> L, R;
  L.Rho = 1.0;
  L.Vel = {0.0};
  L.P = 1.0;
  R.Rho = 0.125;
  R.Vel = {0.0};
  R.P = 0.1;

  ArraySolver<1> S5(sodProblem(128, /*GhostLayers=*/3), C5, Exec);
  ArraySolver<1> S3(sodProblem(128), C3, Exec);
  S5.advanceTo(0.2);
  S3.advanceTo(0.2);
  double E5 = riemannL1Error(S5, L, R, 0.5).Rho;
  double E3 = riemannL1Error(S3, L, R, 0.5).Rho;
  EXPECT_LT(E5, E3 * 1.1);
  FieldHealth<1> H = fieldHealth(S5);
  EXPECT_TRUE(H.AllFinite);
  EXPECT_GT(H.MinDensity, 0.0);
}
