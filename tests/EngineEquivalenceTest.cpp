//===- tests/EngineEquivalenceTest.cpp - Array vs Fused engine equality ----===//
//
// The paper's implicit claim — the SaC port computes the same thing as
// the Fortran original — as an executable invariant: ArraySolver and
// FusedSolver share the numerics, so for identical settings they must
// produce bit-identical fields, on every backend, in both array
// evaluation modes.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"
#include "solver/ArraySolver.h"
#include "solver/Diagnostics.h"
#include "solver/FusedSolver.h"
#include "solver/Problems.h"

#include <gtest/gtest.h>

#include <memory>

using namespace sacfd;

namespace {

struct EquivCase {
  ReconstructionKind Recon;
  RiemannKind Riemann;

  std::string label() const {
    return std::string(reconstructionKindName(Recon)) + "_" +
           riemannKindName(Riemann);
  }

  SchemeConfig config() const {
    SchemeConfig C;
    C.Recon = Recon;
    C.Riemann = Riemann;
    return C;
  }
};

class EngineEquivalence1D : public ::testing::TestWithParam<EquivCase> {};
class EngineEquivalence2D : public ::testing::TestWithParam<EquivCase> {};

} // namespace

TEST_P(EngineEquivalence1D, ArrayAndFusedBitIdenticalOnSod) {
  auto Exec = createBackend(BackendKind::Serial, 1);
  ArraySolver<1> A(sodProblem(128), GetParam().config(), *Exec);
  FusedSolver<1> F(sodProblem(128), GetParam().config(), *Exec);
  A.advanceSteps(25);
  F.advanceSteps(25);
  EXPECT_DOUBLE_EQ(A.time(), F.time()) << "same dt sequence";
  EXPECT_EQ(maxFieldDifference(A, F), 0.0) << "fields diverged";
}

TEST_P(EngineEquivalence2D, ArrayAndFusedBitIdenticalOnInteraction) {
  auto Exec = createBackend(BackendKind::Serial, 1);
  Problem<2> P = shockInteraction2D(32, 2.2, /*ChannelWidth=*/16.0);
  ArraySolver<2> A(P, GetParam().config(), *Exec);
  FusedSolver<2> F(P, GetParam().config(), *Exec);
  A.advanceSteps(8);
  F.advanceSteps(8);
  EXPECT_DOUBLE_EQ(A.time(), F.time());
  EXPECT_EQ(maxFieldDifference(A, F), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, EngineEquivalence1D,
    ::testing::Values(
        EquivCase{ReconstructionKind::PiecewiseConstant, RiemannKind::Hllc},
        EquivCase{ReconstructionKind::Tvd2, RiemannKind::Roe},
        EquivCase{ReconstructionKind::Tvd3, RiemannKind::Hll},
        EquivCase{ReconstructionKind::Weno3, RiemannKind::Hllc},
        EquivCase{ReconstructionKind::Weno3, RiemannKind::Rusanov}),
    [](const ::testing::TestParamInfo<EquivCase> &I) {
      return I.param.label();
    });

INSTANTIATE_TEST_SUITE_P(
    Schemes, EngineEquivalence2D,
    ::testing::Values(
        EquivCase{ReconstructionKind::PiecewiseConstant, RiemannKind::Hllc},
        EquivCase{ReconstructionKind::Weno3, RiemannKind::Hllc}),
    [](const ::testing::TestParamInfo<EquivCase> &I) {
      return I.param.label();
    });

//===----------------------------------------------------------------------===//
// Evaluation modes and backends
//===----------------------------------------------------------------------===//

TEST(EngineEquivalence, FusedAndMaterializedArrayModesIdentical) {
  // The A1 ablation's correctness precondition: fusion changes cost, not
  // results.
  auto Exec = createBackend(BackendKind::Serial, 1);
  SchemeConfig C = SchemeConfig::figureScheme();
  ArraySolver<1> Fused(sodProblem(100), C, *Exec, ArrayEvalMode::Fused);
  ArraySolver<1> Mat(sodProblem(100), C, *Exec,
                     ArrayEvalMode::Materialized);
  Fused.advanceSteps(20);
  Mat.advanceSteps(20);
  EXPECT_EQ(maxFieldDifference(Fused, Mat), 0.0);
}

TEST(EngineEquivalence, FusedAndMaterializedArrayModesIdentical2D) {
  auto Exec = createBackend(BackendKind::Serial, 1);
  SchemeConfig C = SchemeConfig::benchmarkScheme();
  Problem<2> P = shockInteraction2D(24, 2.2, 12.0);
  ArraySolver<2> Fused(P, C, *Exec, ArrayEvalMode::Fused);
  ArraySolver<2> Mat(P, C, *Exec, ArrayEvalMode::Materialized);
  Fused.advanceSteps(6);
  Mat.advanceSteps(6);
  EXPECT_EQ(maxFieldDifference(Fused, Mat), 0.0);
}

TEST(EngineEquivalence, BackendsProduceIdenticalFields1D) {
  // Elementwise updates are partition-independent and the dt reduction
  // is a max: every backend/thread-count must agree bitwise.
  SchemeConfig C = SchemeConfig::figureScheme();
  auto Serial = createBackend(BackendKind::Serial, 1);
  ArraySolver<1> Ref(sodProblem(128), C, *Serial);
  Ref.advanceSteps(15);

  for (BackendKind K : {BackendKind::SpinPool, BackendKind::ForkJoin,
                        BackendKind::OpenMp})
    for (unsigned T : {2u, 4u}) {
      auto B = createBackend(K, T);
      if (!B)
        continue; // OpenMP absent from this build
      ArraySolver<1> S(sodProblem(128), C, *B);
      S.advanceSteps(15);
      EXPECT_EQ(maxFieldDifference(Ref, S), 0.0)
          << backendKindName(K) << " threads=" << T;
    }
}

TEST(EngineEquivalence, BackendsProduceIdenticalFields2DFused) {
  SchemeConfig C = SchemeConfig::benchmarkScheme();
  Problem<2> P = shockInteraction2D(24, 2.2, 12.0);
  auto Serial = createBackend(BackendKind::Serial, 1);
  FusedSolver<2> Ref(P, C, *Serial);
  Ref.advanceSteps(6);

  for (BackendKind K : {BackendKind::SpinPool, BackendKind::ForkJoin}) {
    auto B = createBackend(K, 3);
    FusedSolver<2> S(P, C, *B);
    S.advanceSteps(6);
    EXPECT_EQ(maxFieldDifference(Ref, S), 0.0) << backendKindName(K);
  }
}

TEST(EngineEquivalence, AnisotropicGridBitIdentical) {
  // Nx != Ny and dx != dy stress the fused engine's stride/line
  // decomposition and the per-axis InvDx handling.
  Problem<2> P;
  P.Name = "anisotropic";
  P.Domain = Grid<2>({20, 12}, {0.0, 0.0}, {2.0, 0.6}, 2);
  P.Boundary = BoundarySpec<2>::uniform(BcKind::Transmissive);
  P.InitialState = [](const std::array<double, 2> &X) {
    Prim<2> W;
    W.Rho = 1.0;
    W.Vel = {0.1, -0.2};
    double R2 = (X[0] - 0.7) * (X[0] - 0.7) +
                (X[1] - 0.2) * (X[1] - 0.2);
    W.P = 1.0 + 2.0 * std::exp(-40.0 * R2);
    return W;
  };

  auto Exec = createBackend(BackendKind::Serial, 1);
  SchemeConfig C = SchemeConfig::figureScheme();
  ArraySolver<2> A(P, C, *Exec);
  FusedSolver<2> F(P, C, *Exec);
  A.advanceSteps(6);
  F.advanceSteps(6);
  EXPECT_DOUBLE_EQ(A.time(), F.time());
  EXPECT_EQ(maxFieldDifference(A, F), 0.0);
}

TEST(EngineEquivalence, FusedSolverGetDtMatchesArraySolver) {
  auto Exec = createBackend(BackendKind::Serial, 1);
  SchemeConfig C = SchemeConfig::figureScheme();
  Problem<2> P = riemann2D(20);
  ArraySolver<2> A(P, C, *Exec);
  FusedSolver<2> F(P, C, *Exec);
  EXPECT_DOUBLE_EQ(A.computeDt(), F.computeDt());
}
