//===- tests/ArrayRank3Test.cpp - Rank-3 array layer tests -----------------===//
//
// The array substrate must be rank-generic up to MaxRank; these tests pin
// rank-3 with-loops, crops, reductions and struct-element folds (the
// foundations the 3D solver instantiation stands on).
//
//===----------------------------------------------------------------------===//

#include "array/Reductions.h"
#include "array/WithLoop.h"
#include "euler/State.h"
#include "runtime/Runtime.h"
#include "runtime/SerialBackend.h"

#include <gtest/gtest.h>

using namespace sacfd;

namespace {

SerialBackend Exec;

NDArray<double> rank3Iota(size_t A, size_t B, size_t C) {
  NDArray<double> Out(Shape{A, B, C});
  for (size_t I = 0; I < Out.size(); ++I)
    Out[I] = static_cast<double>(I);
  return Out;
}

} // namespace

TEST(ArrayRank3, WithLoopOverThreeAxes) {
  NDArray<double> Out = withLoop(Shape{3, 4, 5}, Exec, [](const Index &Iv) {
    return static_cast<double>(Iv[0] * 100 + Iv[1] * 10 + Iv[2]);
  });
  EXPECT_EQ(Out.at(Index{0, 0, 0}), 0.0);
  EXPECT_EQ(Out.at(Index{2, 3, 4}), 234.0);
  EXPECT_EQ(Out.at(Index{1, 2, 3}), 123.0);
}

TEST(ArrayRank3, CropOnEveryAxis) {
  NDArray<double> A = rank3Iota(4, 4, 4);
  auto Ex = drop(Index{1, -1, 2}, A);
  ASSERT_EQ(Ex.shape(), Shape({3, 3, 2}));
  NDArray<double> Out = materialize(Ex, Exec);
  // Element (0,0,0) of the view = A(1,0,2).
  EXPECT_EQ(Out.at(Index{0, 0, 0}), A.at(Index{1, 0, 2}));
  EXPECT_EQ(Out.at(Index{2, 2, 1}), A.at(Index{3, 2, 3}));
}

TEST(ArrayRank3, TakeComposesWithDrop) {
  NDArray<double> A = rank3Iota(5, 5, 5);
  // Interior box: drop one layer from every side.
  auto Inner = drop(Index{-1, -1, -1}, drop(Index{1, 1, 1}, A));
  ASSERT_EQ(Inner.shape(), Shape({3, 3, 3}));
  NDArray<double> Out = materialize(Inner, Exec);
  EXPECT_EQ(Out.at(Index{0, 0, 0}), A.at(Index{1, 1, 1}));
  EXPECT_EQ(Out.at(Index{2, 2, 2}), A.at(Index{3, 3, 3}));
}

TEST(ArrayRank3, ReductionsOverFullBox) {
  NDArray<double> A = rank3Iota(4, 3, 2);
  double N = static_cast<double>(A.size());
  EXPECT_DOUBLE_EQ(sum(A, Exec), N * (N - 1.0) / 2.0);
  EXPECT_EQ(maxval(A, Exec), N - 1.0);
  EXPECT_EQ(minval(A, Exec), 0.0);
}

TEST(ArrayRank3, FoldOverConsStates) {
  // The fold carrier can be a struct: summing conservative states is the
  // conservation diagnostic's inner loop.
  Gas G;
  NDArray<Cons<3>> Field(Shape{2, 2, 2});
  for (size_t I = 0; I < Field.size(); ++I) {
    Prim<3> W;
    W.Rho = 1.0 + static_cast<double>(I);
    W.Vel = {1.0, 0.0, -1.0};
    W.P = 1.0;
    Field[I] = toCons(W, G);
  }
  Cons<3> Total = fold(
      Field, Cons<3>{},
      [](const Cons<3> &A, const Cons<3> &B) { return A + B; }, Exec);
  // Sum of rho over 8 cells: 1+2+...+8 = 36.
  EXPECT_DOUBLE_EQ(Total.Rho, 36.0);
  EXPECT_DOUBLE_EQ(Total.Mom[0], 36.0);
  EXPECT_DOUBLE_EQ(Total.Mom[2], -36.0);
}

TEST(ArrayRank3, ElementwiseSelfAssignIsSafe) {
  // assignInto reading only the written element's own position is legal
  // (pure element-wise update in place).
  NDArray<double> A = rank3Iota(3, 3, 3);
  assignInto(A, toExpr(A) * 2.0 + 1.0, Exec);
  EXPECT_EQ(A.at(Index{0, 0, 0}), 1.0);
  EXPECT_EQ(A.at(Index{2, 2, 2}), 2.0 * 26.0 + 1.0);
}

TEST(ArrayRank3, BackendsAgreeOnRank3WithLoop) {
  auto Body = [](const Index &Iv) {
    return static_cast<double>(Iv[0] * Iv[1] + Iv[2]);
  };
  NDArray<double> Ref = withLoop(Shape{6, 5, 4}, Exec, Body);
  for (BackendKind K : {BackendKind::SpinPool, BackendKind::ForkJoin}) {
    auto B = createBackend(K, 3);
    NDArray<double> Got = withLoop(Shape{6, 5, 4}, *B, Body);
    ASSERT_EQ(Got.shape(), Ref.shape());
    for (size_t I = 0; I < Ref.size(); ++I)
      ASSERT_EQ(Got[I], Ref[I]) << backendKindName(K) << " elem " << I;
  }
}

TEST(ArrayRank3, MapIndexTransposePermutesAxes) {
  NDArray<double> A = rank3Iota(2, 3, 4);
  auto Permuted = mapIndex(Shape{4, 2, 3}, [&A](const Index &Iv) {
    return A.at(Index{Iv[1], Iv[2], Iv[0]});
  });
  NDArray<double> Out = materialize(Permuted, Exec);
  for (std::ptrdiff_t I = 0; I < 2; ++I)
    for (std::ptrdiff_t J = 0; J < 3; ++J)
      for (std::ptrdiff_t K = 0; K < 4; ++K)
        EXPECT_EQ(Out.at(Index{K, I, J}), A.at(Index{I, J, K}));
}
