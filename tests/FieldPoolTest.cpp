//===- tests/FieldPoolTest.cpp - FieldPool unit tests ---------------------===//
//
// The buffer arena behind the zero-allocation hot path: lease recycling,
// shape-key and type isolation, stats accounting, value-init vs uninit
// acquisition semantics, and the disabled (pass-through) mode.
//
//===----------------------------------------------------------------------===//

#include "array/AllocCounter.h"
#include "array/FieldPool.h"
#include "euler/State.h"
#include "telemetry/Telemetry.h"

#include <gtest/gtest.h>

#include <cstdint>

using namespace sacfd;

namespace {

TEST(FieldPoolTest, LeaseRecyclesSameBuffer) {
  FieldPool Pool;
  Shape S{16};
  double *FirstData = nullptr;
  {
    FieldPool::Lease<double> L = Pool.acquire<double>(S);
    FirstData = L->data();
    ASSERT_NE(FirstData, nullptr);
    EXPECT_EQ(L->shape(), S);
  }
  // Same shape again: the freed buffer must come back, not a new one.
  FieldPool::Lease<double> L2 = Pool.acquire<double>(S);
  EXPECT_EQ(L2->data(), FirstData);

  FieldPool::Stats St = Pool.stats();
  EXPECT_EQ(St.Acquisitions, 2u);
  EXPECT_EQ(St.Hits, 1u);
  EXPECT_EQ(St.LiveLeases, 1u);
}

TEST(FieldPoolTest, RecycledAcquireIsValueInitialized) {
  FieldPool Pool;
  Shape S{8};
  {
    FieldPool::Lease<double> L = Pool.acquire<double>(S);
    L->fill(42.0);
  }
  FieldPool::Lease<double> L = Pool.acquire<double>(S);
  for (double V : *L)
    EXPECT_EQ(V, 0.0);
}

TEST(FieldPoolTest, UninitAcquireSkipsReZeroing) {
  FieldPool Pool;
  Shape S{8};
  double *Data = nullptr;
  {
    FieldPool::Lease<double> L = Pool.acquireUninit<double>(S);
    Data = L->data();
    L->fill(42.0);
  }
  FieldPool::Lease<double> L = Pool.acquireUninit<double>(S);
  // Same storage, contents untouched — the no-memset fast path.  (Safe
  // only because pooled-buffer consumers overwrite every element.)
  ASSERT_EQ(L->data(), Data);
  for (double V : *L)
    EXPECT_EQ(V, 42.0);
}

TEST(FieldPoolTest, ShapeKeysIsolateBuckets) {
  FieldPool Pool;
  FieldPool::Lease<double> A = Pool.acquire<double>(Shape{4});
  FieldPool::Lease<double> B = Pool.acquire<double>(Shape{4, 4});
  EXPECT_EQ(A->size(), 4u);
  EXPECT_EQ(B->size(), 16u);
  double *Data4 = A->data();
  A.reset();
  B.reset();
  // A rank-2 {2, 2} shape has the same element count as {4} but is a
  // different key; it must not steal the {4} buffer.
  FieldPool::Lease<double> C = Pool.acquire<double>(Shape{2, 2});
  EXPECT_NE(C->data(), Data4);
  EXPECT_EQ(C->shape(), (Shape{2, 2}));
  FieldPool::Lease<double> D = Pool.acquire<double>(Shape{4});
  EXPECT_EQ(D->data(), Data4);
}

TEST(FieldPoolTest, ElementTypesIsolateBuckets) {
  FieldPool Pool;
  FieldPool::Lease<double> A = Pool.acquire<double>(Shape{8});
  A.reset();
  // Same shape, different element type: must be a fresh buffer.
  FieldPool::Lease<float> B = Pool.acquire<float>(Shape{8});
  EXPECT_EQ(B->size(), 8u);
  FieldPool::Stats St = Pool.stats();
  EXPECT_EQ(St.Acquisitions, 2u);
  EXPECT_EQ(St.Hits, 0u);
}

TEST(FieldPoolTest, StatsTrackResidencyAndHighWater) {
  FieldPool Pool;
  Shape S{100};
  uint64_t Bytes = 100 * sizeof(double);
  {
    FieldPool::Lease<double> A = Pool.acquire<double>(S);
    FieldPool::Lease<double> B = Pool.acquire<double>(S);
    FieldPool::Stats St = Pool.stats();
    EXPECT_EQ(St.BytesResident, 2 * Bytes);
    EXPECT_EQ(St.HighWaterBytes, 2 * Bytes);
    EXPECT_EQ(St.LiveLeases, 2u);
  }
  // Released buffers stay resident (pooled), so the footprint holds.
  FieldPool::Stats St = Pool.stats();
  EXPECT_EQ(St.BytesResident, 2 * Bytes);
  EXPECT_EQ(St.HighWaterBytes, 2 * Bytes);
  EXPECT_EQ(St.LiveLeases, 0u);

  // Steady-state reuse must not grow the high-water mark.
  for (int I = 0; I < 10; ++I) {
    FieldPool::Lease<double> A = Pool.acquire<double>(S);
    FieldPool::Lease<double> B = Pool.acquire<double>(S);
  }
  St = Pool.stats();
  EXPECT_EQ(St.HighWaterBytes, 2 * Bytes);
  EXPECT_EQ(St.Hits, 20u);
}

TEST(FieldPoolTest, SteadyStateAcquireDoesNotAllocate) {
  FieldPool Pool;
  Shape S{64};
  { FieldPool::Lease<double> Warm = Pool.acquire<double>(S); }
  uint64_t Before = alloctrack::allocationCount();
  for (int I = 0; I < 100; ++I) {
    FieldPool::Lease<double> L = Pool.acquireUninit<double>(S);
  }
  EXPECT_EQ(alloctrack::allocationCount(), Before);
}

TEST(FieldPoolTest, DisabledPoolPassesThrough) {
  FieldPool Pool;
  Shape S{32};
  { FieldPool::Lease<double> Warm = Pool.acquire<double>(S); }
  EXPECT_EQ(Pool.stats().BytesResident, 32 * sizeof(double));

  // Disabling drains the free list...
  Pool.setEnabled(false);
  EXPECT_FALSE(Pool.enabled());
  EXPECT_EQ(Pool.stats().BytesResident, 0u);

  // ...and acquisitions become plain allocations (no hits, residency
  // returns to zero after release).
  uint64_t Before = alloctrack::allocationCount();
  {
    FieldPool::Lease<double> L = Pool.acquire<double>(S);
    EXPECT_EQ(Pool.stats().BytesResident, 32 * sizeof(double));
  }
  EXPECT_GT(alloctrack::allocationCount(), Before);
  FieldPool::Stats St = Pool.stats();
  EXPECT_EQ(St.Hits, 0u);
  EXPECT_EQ(St.BytesResident, 0u);
}

bool aligned64(const void *P) {
  return reinterpret_cast<std::uintptr_t>(P) % kFieldAlign == 0;
}

TEST(FieldPoolTest, EveryAcquirePathIs64ByteAligned) {
  // Regression: acquireUninit once produced malloc-default (16-byte)
  // alignment, breaking the aligned-load contract the vectorized kernels
  // assume.  Every acquire path — zeroed, uninit, recycled, pooled or
  // disabled — must hand out 64-byte-aligned storage for every shape,
  // including odd and sub-vector-width counts.
  const Shape Shapes[] = {Shape{1},     Shape{3},      Shape{5},
                          Shape{7},     Shape{8},      Shape{64},
                          Shape{17, 9}, Shape{5, 7, 3}};
  for (bool Enabled : {true, false}) {
    FieldPool Pool;
    Pool.setEnabled(Enabled);
    for (const Shape &S : Shapes) {
      {
        FieldPool::Lease<double> A = Pool.acquire<double>(S);
        EXPECT_TRUE(aligned64(A->data())) << S.str();
        FieldPool::Lease<double> B = Pool.acquireUninit<double>(S);
        EXPECT_TRUE(aligned64(B->data())) << S.str();
        FieldPool::Lease<Cons<2>> C = Pool.acquire<Cons<2>>(S);
        EXPECT_TRUE(aligned64(C->data())) << S.str();
      }
      // Recycled round: the buffer coming back off the free list must
      // still carry its original alignment.
      FieldPool::Lease<double> R = Pool.acquireUninit<double>(S);
      EXPECT_TRUE(aligned64(R->data())) << S.str() << " (recycled)";
    }
  }
}

TEST(FieldPoolTest, LayoutAndAlignmentKeyBuckets) {
  FieldPool Pool;
  Shape S{16};
  double *AosData = nullptr;
  {
    FieldPool::Lease<double> A = Pool.acquire<double>(S, Layout::AoS);
    AosData = A->data();
    EXPECT_EQ(A.layout(), Layout::AoS);
    EXPECT_EQ(A.alignment(), kFieldAlign);
  }
  // Same shape under the other layout: a different bucket, so the AoS
  // buffer must not be stolen.
  FieldPool::Lease<double> B = Pool.acquire<double>(S, Layout::SoA);
  EXPECT_EQ(B.layout(), Layout::SoA);
  EXPECT_NE(B->data(), AosData);
  // The AoS bucket still holds its buffer.
  FieldPool::Lease<double> C = Pool.acquire<double>(S, Layout::AoS);
  EXPECT_EQ(C->data(), AosData);
}

TEST(FieldPoolTest, LayoutMismatchedReuseIsStructuredError) {
  FieldPool Pool;
  FieldPool::Lease<double> L = Pool.acquire<double>(Shape{8}, Layout::SoA);
  EXPECT_TRUE(static_cast<bool>(L.reuseAs(Layout::SoA)));
  FieldPool::PoolStatus St = L.reuseAs(Layout::AoS);
  ASSERT_FALSE(static_cast<bool>(St));
  EXPECT_EQ(St.Err, FieldPool::PoolError::LayoutMismatch);
  // The diagnostic names both layouts — an error report, not an assert.
  EXPECT_NE(St.Detail.find("soa"), std::string::npos);
  EXPECT_NE(St.Detail.find("aos"), std::string::npos);
}

TEST(FieldPoolTest, LayoutGaugeExported) {
  telemetry::reset();
  telemetry::setGaugeStride(1);
  telemetry::setEnabled(true);
  FieldPool Pool;
  Pool.setLayout(Layout::SoA);
  EXPECT_EQ(Pool.layout(), Layout::SoA);
  { FieldPool::Lease<double> Warm = Pool.acquire<double>(Shape{8}); }
  Pool.recordTelemetry(0);
  telemetry::MetricsReport R = telemetry::snapshot();
  telemetry::setEnabled(false);
  bool Found = false;
  for (const telemetry::GaugeSeries &G : R.Gauges)
    if (G.Name == "pool.layout") {
      Found = true;
      ASSERT_FALSE(G.Samples.empty());
      EXPECT_EQ(G.Samples.back().Value,
                static_cast<double>(static_cast<int>(Layout::SoA)));
    }
  EXPECT_TRUE(Found) << "pool.layout gauge missing from telemetry";
  telemetry::reset();
}

TEST(FieldPoolTest, MoveTransfersLease) {
  FieldPool Pool;
  FieldPool::Lease<double> A = Pool.acquire<double>(Shape{8});
  double *Data = A->data();
  FieldPool::Lease<double> B = std::move(A);
  EXPECT_FALSE(A);
  ASSERT_TRUE(B);
  EXPECT_EQ(B->data(), Data);
  EXPECT_EQ(Pool.stats().LiveLeases, 1u);

  // Move-assigning over a live lease releases its buffer first.
  FieldPool::Lease<double> C = Pool.acquire<double>(Shape{8});
  EXPECT_EQ(Pool.stats().LiveLeases, 2u);
  C = std::move(B);
  EXPECT_EQ(Pool.stats().LiveLeases, 1u);
  EXPECT_EQ(C->data(), Data);
}

} // namespace
