//===- tests/FieldPoolTest.cpp - FieldPool unit tests ---------------------===//
//
// The buffer arena behind the zero-allocation hot path: lease recycling,
// shape-key and type isolation, stats accounting, value-init vs uninit
// acquisition semantics, and the disabled (pass-through) mode.
//
//===----------------------------------------------------------------------===//

#include "array/AllocCounter.h"
#include "array/FieldPool.h"

#include <gtest/gtest.h>

using namespace sacfd;

namespace {

TEST(FieldPoolTest, LeaseRecyclesSameBuffer) {
  FieldPool Pool;
  Shape S{16};
  double *FirstData = nullptr;
  {
    FieldPool::Lease<double> L = Pool.acquire<double>(S);
    FirstData = L->data();
    ASSERT_NE(FirstData, nullptr);
    EXPECT_EQ(L->shape(), S);
  }
  // Same shape again: the freed buffer must come back, not a new one.
  FieldPool::Lease<double> L2 = Pool.acquire<double>(S);
  EXPECT_EQ(L2->data(), FirstData);

  FieldPool::Stats St = Pool.stats();
  EXPECT_EQ(St.Acquisitions, 2u);
  EXPECT_EQ(St.Hits, 1u);
  EXPECT_EQ(St.LiveLeases, 1u);
}

TEST(FieldPoolTest, RecycledAcquireIsValueInitialized) {
  FieldPool Pool;
  Shape S{8};
  {
    FieldPool::Lease<double> L = Pool.acquire<double>(S);
    L->fill(42.0);
  }
  FieldPool::Lease<double> L = Pool.acquire<double>(S);
  for (double V : *L)
    EXPECT_EQ(V, 0.0);
}

TEST(FieldPoolTest, UninitAcquireSkipsReZeroing) {
  FieldPool Pool;
  Shape S{8};
  double *Data = nullptr;
  {
    FieldPool::Lease<double> L = Pool.acquireUninit<double>(S);
    Data = L->data();
    L->fill(42.0);
  }
  FieldPool::Lease<double> L = Pool.acquireUninit<double>(S);
  // Same storage, contents untouched — the no-memset fast path.  (Safe
  // only because pooled-buffer consumers overwrite every element.)
  ASSERT_EQ(L->data(), Data);
  for (double V : *L)
    EXPECT_EQ(V, 42.0);
}

TEST(FieldPoolTest, ShapeKeysIsolateBuckets) {
  FieldPool Pool;
  FieldPool::Lease<double> A = Pool.acquire<double>(Shape{4});
  FieldPool::Lease<double> B = Pool.acquire<double>(Shape{4, 4});
  EXPECT_EQ(A->size(), 4u);
  EXPECT_EQ(B->size(), 16u);
  double *Data4 = A->data();
  A.reset();
  B.reset();
  // A rank-2 {2, 2} shape has the same element count as {4} but is a
  // different key; it must not steal the {4} buffer.
  FieldPool::Lease<double> C = Pool.acquire<double>(Shape{2, 2});
  EXPECT_NE(C->data(), Data4);
  EXPECT_EQ(C->shape(), (Shape{2, 2}));
  FieldPool::Lease<double> D = Pool.acquire<double>(Shape{4});
  EXPECT_EQ(D->data(), Data4);
}

TEST(FieldPoolTest, ElementTypesIsolateBuckets) {
  FieldPool Pool;
  FieldPool::Lease<double> A = Pool.acquire<double>(Shape{8});
  A.reset();
  // Same shape, different element type: must be a fresh buffer.
  FieldPool::Lease<float> B = Pool.acquire<float>(Shape{8});
  EXPECT_EQ(B->size(), 8u);
  FieldPool::Stats St = Pool.stats();
  EXPECT_EQ(St.Acquisitions, 2u);
  EXPECT_EQ(St.Hits, 0u);
}

TEST(FieldPoolTest, StatsTrackResidencyAndHighWater) {
  FieldPool Pool;
  Shape S{100};
  uint64_t Bytes = 100 * sizeof(double);
  {
    FieldPool::Lease<double> A = Pool.acquire<double>(S);
    FieldPool::Lease<double> B = Pool.acquire<double>(S);
    FieldPool::Stats St = Pool.stats();
    EXPECT_EQ(St.BytesResident, 2 * Bytes);
    EXPECT_EQ(St.HighWaterBytes, 2 * Bytes);
    EXPECT_EQ(St.LiveLeases, 2u);
  }
  // Released buffers stay resident (pooled), so the footprint holds.
  FieldPool::Stats St = Pool.stats();
  EXPECT_EQ(St.BytesResident, 2 * Bytes);
  EXPECT_EQ(St.HighWaterBytes, 2 * Bytes);
  EXPECT_EQ(St.LiveLeases, 0u);

  // Steady-state reuse must not grow the high-water mark.
  for (int I = 0; I < 10; ++I) {
    FieldPool::Lease<double> A = Pool.acquire<double>(S);
    FieldPool::Lease<double> B = Pool.acquire<double>(S);
  }
  St = Pool.stats();
  EXPECT_EQ(St.HighWaterBytes, 2 * Bytes);
  EXPECT_EQ(St.Hits, 20u);
}

TEST(FieldPoolTest, SteadyStateAcquireDoesNotAllocate) {
  FieldPool Pool;
  Shape S{64};
  { FieldPool::Lease<double> Warm = Pool.acquire<double>(S); }
  uint64_t Before = alloctrack::allocationCount();
  for (int I = 0; I < 100; ++I) {
    FieldPool::Lease<double> L = Pool.acquireUninit<double>(S);
  }
  EXPECT_EQ(alloctrack::allocationCount(), Before);
}

TEST(FieldPoolTest, DisabledPoolPassesThrough) {
  FieldPool Pool;
  Shape S{32};
  { FieldPool::Lease<double> Warm = Pool.acquire<double>(S); }
  EXPECT_EQ(Pool.stats().BytesResident, 32 * sizeof(double));

  // Disabling drains the free list...
  Pool.setEnabled(false);
  EXPECT_FALSE(Pool.enabled());
  EXPECT_EQ(Pool.stats().BytesResident, 0u);

  // ...and acquisitions become plain allocations (no hits, residency
  // returns to zero after release).
  uint64_t Before = alloctrack::allocationCount();
  {
    FieldPool::Lease<double> L = Pool.acquire<double>(S);
    EXPECT_EQ(Pool.stats().BytesResident, 32 * sizeof(double));
  }
  EXPECT_GT(alloctrack::allocationCount(), Before);
  FieldPool::Stats St = Pool.stats();
  EXPECT_EQ(St.Hits, 0u);
  EXPECT_EQ(St.BytesResident, 0u);
}

TEST(FieldPoolTest, MoveTransfersLease) {
  FieldPool Pool;
  FieldPool::Lease<double> A = Pool.acquire<double>(Shape{8});
  double *Data = A->data();
  FieldPool::Lease<double> B = std::move(A);
  EXPECT_FALSE(A);
  ASSERT_TRUE(B);
  EXPECT_EQ(B->data(), Data);
  EXPECT_EQ(Pool.stats().LiveLeases, 1u);

  // Move-assigning over a live lease releases its buffer first.
  FieldPool::Lease<double> C = Pool.acquire<double>(Shape{8});
  EXPECT_EQ(Pool.stats().LiveLeases, 2u);
  C = std::move(B);
  EXPECT_EQ(Pool.stats().LiveLeases, 1u);
  EXPECT_EQ(C->data(), Data);
}

} // namespace
