//===- tests/CheckpointStoreTest.cpp - Rotation + resume fallback ---------===//
//
// The rotated checkpoint directory: generation naming, keep-last-K
// pruning, manifest ∪ directory-scan discovery (the crash window between
// "rename checkpoint" and "update manifest"), and resume's newest-first
// fallback across corrupt generations with per-file error reporting.
//
//===----------------------------------------------------------------------===//

#include "io/CheckpointStore.h"
#include "runtime/SerialBackend.h"
#include "solver/ArraySolver.h"
#include "solver/Diagnostics.h"
#include "solver/Problems.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

using namespace sacfd;

namespace fs = std::filesystem;

namespace {

SerialBackend Exec;

/// A fresh, empty store directory per test.
std::string freshDir(const char *Name) {
  std::string Dir = std::string(::testing::TempDir()) + "/" + Name;
  fs::remove_all(Dir);
  return Dir;
}

struct FaultGuard {
  FaultGuard() { iofault::clear(); }
  ~FaultGuard() { iofault::clear(); }
};

} // namespace

TEST(CheckpointStore, GenerationNamesEncodeTheStepCount) {
  EXPECT_EQ(CheckpointStore::generationFileName(0), "ckpt-00000000.sacfd");
  EXPECT_EQ(CheckpointStore::generationFileName(1234),
            "ckpt-00001234.sacfd");
}

TEST(CheckpointStore, WritePublishesGenerationAndManifest) {
  std::string Dir = freshDir("store_write");
  CheckpointStore Store(Dir, /*Keep=*/3);
  ArraySolver<1> S(sodProblem(32), SchemeConfig::benchmarkScheme(), Exec);
  S.advanceSteps(4);
  ASSERT_TRUE(Store.write(S).ok());

  auto Gens = Store.generations();
  ASSERT_EQ(Gens.size(), 1u);
  EXPECT_EQ(Gens[0].Steps, 4u);
  EXPECT_TRUE(fs::exists(Gens[0].Path));

  std::ifstream Manifest(Store.manifestPath());
  ASSERT_TRUE(Manifest.good());
  std::string Line;
  std::getline(Manifest, Line);
  EXPECT_EQ(Line.front(), '#') << "leading comment line";
  std::getline(Manifest, Line);
  EXPECT_EQ(Line, "ckpt-00000004.sacfd");
  fs::remove_all(Dir);
}

TEST(CheckpointStore, RotationKeepsOnlyTheLastK) {
  std::string Dir = freshDir("store_rotate");
  CheckpointStore Store(Dir, /*Keep=*/2);
  ArraySolver<1> S(sodProblem(32), SchemeConfig::benchmarkScheme(), Exec);
  for (int I = 0; I < 4; ++I) {
    S.advanceSteps(3);
    ASSERT_TRUE(Store.write(S).ok());
  }

  auto Gens = Store.generations();
  ASSERT_EQ(Gens.size(), 2u) << "keep=2 prunes the rest";
  EXPECT_EQ(Gens[0].Steps, 12u) << "newest first";
  EXPECT_EQ(Gens[1].Steps, 9u);
  EXPECT_FALSE(fs::exists(Dir + "/ckpt-00000003.sacfd"));
  EXPECT_FALSE(fs::exists(Dir + "/ckpt-00000006.sacfd"));
  fs::remove_all(Dir);
}

TEST(CheckpointStore, WriteSweepsOrphanedTmpFiles) {
  // A SIGKILL between "stage to .tmp" and "rename into place" strands the
  // .tmp forever (DurabilityTest manufactures exactly this with its
  // kill-write fault).  The next writer must reclaim such leftovers —
  // and must never touch foreign files that happen to live in the
  // directory or the real generations.
  std::string Dir = freshDir("store_tmp_sweep");
  CheckpointStore Store(Dir, /*Keep=*/3);
  ArraySolver<1> S(sodProblem(32), SchemeConfig::benchmarkScheme(), Exec);
  S.advanceSteps(2);
  ASSERT_TRUE(Store.write(S).ok());

  std::ofstream(Dir + "/ckpt-00000099.sacfd.tmp") << "torn payload";
  std::ofstream(Dir + "/manifest.txt.tmp") << "torn manifest";
  std::ofstream(Dir + "/unrelated.tmp") << "not ours";
  std::ofstream(Dir + "/notes.txt") << "not ours either";

  S.advanceSteps(2);
  ASSERT_TRUE(Store.write(S).ok());
  EXPECT_FALSE(fs::exists(Dir + "/ckpt-00000099.sacfd.tmp"));
  EXPECT_FALSE(fs::exists(Dir + "/manifest.txt.tmp"));
  EXPECT_TRUE(fs::exists(Dir + "/unrelated.tmp"))
      << "only our own staging names may be swept";
  EXPECT_TRUE(fs::exists(Dir + "/notes.txt"));

  auto Gens = Store.generations();
  ASSERT_EQ(Gens.size(), 2u) << "real generations survive the sweep";
  EXPECT_EQ(Gens[0].Steps, 4u);
  EXPECT_EQ(Gens[1].Steps, 2u);
  fs::remove_all(Dir);
}

TEST(CheckpointStore, ResumeSweepsOrphanedTmpFiles) {
  std::string Dir = freshDir("store_tmp_sweep_resume");
  CheckpointStore Store(Dir, /*Keep=*/3);
  ArraySolver<1> S(sodProblem(32), SchemeConfig::benchmarkScheme(), Exec);
  S.advanceSteps(3);
  ASSERT_TRUE(Store.write(S).ok());
  std::ofstream(Dir + "/ckpt-00000007.sacfd.tmp") << "torn";

  ArraySolver<1> R(sodProblem(32), SchemeConfig::benchmarkScheme(), Exec);
  auto Out = Store.resume(R);
  ASSERT_TRUE(Out.resumed());
  EXPECT_EQ(Out.LoadedSteps, 3u);
  EXPECT_FALSE(fs::exists(Dir + "/ckpt-00000007.sacfd.tmp"))
      << "resume reclaims crash leftovers";
  fs::remove_all(Dir);
}

TEST(CheckpointStore, DiscoveryUnionsManifestWithDirectoryScan) {
  std::string Dir = freshDir("store_union");
  CheckpointStore Store(Dir, /*Keep=*/3);
  ArraySolver<1> S(sodProblem(32), SchemeConfig::benchmarkScheme(), Exec);
  S.advanceSteps(2);
  ASSERT_TRUE(Store.write(S).ok());

  // The crash window: a generation renamed into place whose manifest
  // update never happened.  The scan must still surface it as newest.
  S.advanceSteps(2);
  ASSERT_TRUE(
      saveCheckpoint(Dir + "/" + CheckpointStore::generationFileName(4), S)
          .ok());
  auto Gens = Store.generations();
  ASSERT_EQ(Gens.size(), 2u);
  EXPECT_EQ(Gens[0].Steps, 4u) << "unmanifested newest generation found";

  // The reverse: a manifest entry whose file is gone is ignored, and a
  // deleted manifest does not hide the files.
  fs::remove(Store.manifestPath());
  Gens = Store.generations();
  EXPECT_EQ(Gens.size(), 2u);

  std::ofstream(Store.manifestPath())
      << "# comment\nckpt-00009999.sacfd\nnot-a-checkpoint.txt\n\n";
  Gens = Store.generations();
  EXPECT_EQ(Gens.size(), 2u) << "stale + malformed entries ignored";
  fs::remove_all(Dir);
}

TEST(CheckpointStore, ResumeLoadsTheNewestGeneration) {
  std::string Dir = freshDir("store_resume");
  CheckpointStore Store(Dir, /*Keep=*/3);
  ArraySolver<1> S(sodProblem(32), SchemeConfig::benchmarkScheme(), Exec);
  for (int I = 0; I < 3; ++I) {
    S.advanceSteps(5);
    ASSERT_TRUE(Store.write(S).ok());
  }

  ArraySolver<1> T(sodProblem(32), SchemeConfig::benchmarkScheme(), Exec);
  CheckpointStore::ResumeOutcome Out = Store.resume(T);
  ASSERT_TRUE(Out.resumed()) << Out.Status.str();
  EXPECT_EQ(Out.LoadedSteps, 15u);
  EXPECT_TRUE(Out.Skipped.empty());
  EXPECT_EQ(T.stepCount(), 15u);
  EXPECT_EQ(maxFieldDifference(S, T), 0.0);
  fs::remove_all(Dir);
}

TEST(CheckpointStore, ResumeOfEmptyStoreIsNotFound) {
  std::string Dir = freshDir("store_empty");
  CheckpointStore Store(Dir, /*Keep=*/3);
  ArraySolver<1> T(sodProblem(32), SchemeConfig::benchmarkScheme(), Exec);
  CheckpointStore::ResumeOutcome Out = Store.resume(T);
  EXPECT_FALSE(Out.resumed());
  EXPECT_EQ(Out.Status.Error, CheckpointError::NotFound);
  EXPECT_EQ(T.stepCount(), 0u);
}

TEST(CheckpointStore, ResumeFallsBackAcrossCorruptNewestGeneration) {
  FaultGuard FG;
  std::string Dir = freshDir("store_fallback");
  CheckpointStore Store(Dir, /*Keep=*/3);
  ArraySolver<1> S(sodProblem(32), SchemeConfig::benchmarkScheme(), Exec);
  S.advanceSteps(5);
  ASSERT_TRUE(Store.write(S).ok());
  ArraySolver<1> Reference(sodProblem(32), SchemeConfig::benchmarkScheme(),
                           Exec);
  Reference.advanceSteps(5); // state at generation 5
  S.advanceSteps(5);
  ASSERT_TRUE(Store.write(S).ok());

  // Fault injection corrupts the newest generation's payload read
  // (reads 1-4 are magic/prefix/tail/payload of ckpt-...10); the
  // fallback load of generation 5 runs clean.
  iofault::Plan P;
  P.BitFlipReadNth = 4;
  iofault::setPlan(P);
  ArraySolver<1> T(sodProblem(32), SchemeConfig::benchmarkScheme(), Exec);
  CheckpointStore::ResumeOutcome Out = Store.resume(T);
  ASSERT_TRUE(Out.resumed()) << Out.Status.str();
  EXPECT_EQ(Out.LoadedSteps, 5u) << "fell back to generation N-1";
  ASSERT_EQ(Out.Skipped.size(), 1u) << "the skipped newest is reported";
  EXPECT_NE(Out.Skipped[0].first.find("ckpt-00000010"), std::string::npos);
  EXPECT_EQ(Out.Skipped[0].second.Error, CheckpointError::ChecksumMismatch);
  EXPECT_EQ(T.stepCount(), 5u);
  EXPECT_EQ(maxFieldDifference(Reference, T), 0.0)
      << "resume state is the uncorrupted generation, bit-identical";
  fs::remove_all(Dir);
}

TEST(CheckpointStore, ResumeFallsBackAcrossTornNewestGeneration) {
  // Same fallback, disk edition: the newest generation is physically
  // truncated (a tear that beat the rename, or media loss).
  std::string Dir = freshDir("store_torn");
  CheckpointStore Store(Dir, /*Keep=*/3);
  ArraySolver<1> S(sodProblem(32), SchemeConfig::benchmarkScheme(), Exec);
  S.advanceSteps(3);
  ASSERT_TRUE(Store.write(S).ok());
  S.advanceSteps(3);
  ASSERT_TRUE(Store.write(S).ok());

  std::string Newest = Dir + "/" + CheckpointStore::generationFileName(6);
  ASSERT_TRUE(fs::exists(Newest));
  fs::resize_file(Newest, fs::file_size(Newest) / 2);

  ArraySolver<1> T(sodProblem(32), SchemeConfig::benchmarkScheme(), Exec);
  CheckpointStore::ResumeOutcome Out = Store.resume(T);
  ASSERT_TRUE(Out.resumed()) << Out.Status.str();
  EXPECT_EQ(Out.LoadedSteps, 3u);
  ASSERT_EQ(Out.Skipped.size(), 1u);
  EXPECT_EQ(Out.Skipped[0].second.Error, CheckpointError::Truncated);
  fs::remove_all(Dir);
}

TEST(CheckpointStore, ResumeWithEveryGenerationCorruptReportsAll) {
  std::string Dir = freshDir("store_allbad");
  CheckpointStore Store(Dir, /*Keep=*/3);
  ArraySolver<1> S(sodProblem(32), SchemeConfig::benchmarkScheme(), Exec);
  for (int I = 0; I < 2; ++I) {
    S.advanceSteps(2);
    ASSERT_TRUE(Store.write(S).ok());
  }
  for (const auto &G : Store.generations())
    fs::resize_file(G.Path, 40); // inside the header

  ArraySolver<1> T(sodProblem(32), SchemeConfig::benchmarkScheme(), Exec);
  T.advanceSteps(1);
  CheckpointStore::ResumeOutcome Out = Store.resume(T);
  EXPECT_FALSE(Out.resumed());
  EXPECT_EQ(Out.Status.Error, CheckpointError::Truncated)
      << "the newest generation's error wins";
  EXPECT_NE(Out.Status.Detail.find("no loadable generation among 2"),
            std::string::npos)
      << Out.Status.str();
  EXPECT_EQ(Out.Skipped.size(), 2u);
  EXPECT_EQ(T.stepCount(), 1u) << "solver untouched";
  fs::remove_all(Dir);
}

TEST(CheckpointStore, ManifestWriteFailureStillKeepsTheCheckpoint) {
  FaultGuard FG;
  std::string Dir = freshDir("store_manifestfail");
  CheckpointStore Store(Dir, /*Keep=*/3);
  ArraySolver<1> S(sodProblem(32), SchemeConfig::benchmarkScheme(), Exec);
  S.advanceSteps(2);

  // Ops during write(): checkpoint header (1), payload (2), then the
  // manifest body is write 3 — fail exactly that one.
  iofault::Plan P;
  P.FailWriteNth = 3;
  iofault::setPlan(P);
  CheckpointStatus St = Store.write(S);
  iofault::clear();
  EXPECT_EQ(St.Error, CheckpointError::WriteFailed);
  EXPECT_NE(St.Detail.find("manifest"), std::string::npos) << St.str();

  // The generation itself is durably on disk and resumable.
  ArraySolver<1> T(sodProblem(32), SchemeConfig::benchmarkScheme(), Exec);
  CheckpointStore::ResumeOutcome Out = Store.resume(T);
  ASSERT_TRUE(Out.resumed()) << Out.Status.str();
  EXPECT_EQ(Out.LoadedSteps, 2u);
  fs::remove_all(Dir);
}
