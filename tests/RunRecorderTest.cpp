//===- tests/RunRecorderTest.cpp - Time-series diagnostics tests ----------===//

#include "runtime/SerialBackend.h"
#include "solver/ArraySolver.h"
#include "solver/Problems.h"
#include "solver/RunRecorder.h"

#include <gtest/gtest.h>

using namespace sacfd;

namespace {

SerialBackend Exec;

} // namespace

TEST(RunRecorder, RecordsEveryStepByDefault) {
  ArraySolver<1> S(sodProblem(64), SchemeConfig::benchmarkScheme(), Exec);
  RunRecorder<1> Rec;
  Rec.advanceSteps(S, 10);
  ASSERT_EQ(Rec.samples().size(), 10u);
  EXPECT_EQ(Rec.samples().front().Step, 1u);
  EXPECT_EQ(Rec.samples().back().Step, 10u);
  // Time strictly increases, dt positive.
  double Prev = 0.0;
  for (const RunSample<1> &Sample : Rec.samples()) {
    EXPECT_GT(Sample.Time, Prev);
    EXPECT_GT(Sample.Dt, 0.0);
    Prev = Sample.Time;
  }
}

TEST(RunRecorder, StrideSkipsIntermediateSteps) {
  ArraySolver<1> S(sodProblem(64), SchemeConfig::benchmarkScheme(), Exec);
  RunRecorder<1> Rec(/*Stride=*/5);
  Rec.advanceSteps(S, 20);
  ASSERT_EQ(Rec.samples().size(), 4u);
  EXPECT_EQ(Rec.samples()[0].Step, 5u);
  EXPECT_EQ(Rec.samples()[3].Step, 20u);
}

TEST(RunRecorder, MassDriftIsZeroOnClosedDomain) {
  Problem<1> P = sodProblem(64);
  P.Boundary = BoundarySpec<1>::uniform(BcKind::Reflective);
  ArraySolver<1> S(P, SchemeConfig::figureScheme(), Exec);
  RunRecorder<1> Rec;
  Rec.advanceSteps(S, 20);
  EXPECT_LT(Rec.massDrift(), 1e-13);
  EXPECT_GT(Rec.minDensitySeen(), 0.0);
  EXPECT_GT(Rec.minPressureSeen(), 0.0);
}

TEST(RunRecorder, MassDriftPositiveOnOpenDomain) {
  // Sod with transmissive ends loses mass once the waves reach the
  // boundary; drift must eventually register.
  ArraySolver<1> S(sodProblem(32), SchemeConfig::figureScheme(), Exec);
  RunRecorder<1> Rec;
  // Run long enough for the shock to exit (t ~ 0.3 at N=32).
  while (S.time() < 0.5)
    Rec.advanceAndRecord(S);
  EXPECT_GT(Rec.massDrift(), 1e-4);
}

TEST(RunRecorder, CsvShapeMatchesHeader) {
  ArraySolver<2> S(uniformFlow2D(8), SchemeConfig::benchmarkScheme(),
                   Exec);
  RunRecorder<2> Rec;
  Rec.advanceSteps(S, 3);
  auto Header = RunRecorder<2>::csvHeader();
  auto Rows = Rec.csvRows();
  ASSERT_EQ(Rows.size(), 3u);
  EXPECT_EQ(Header.size(), 9u); // step,t,dt,mass,mx,my,energy,min_rho,min_p
  for (const auto &Row : Rows)
    EXPECT_EQ(Row.size(), Header.size());
}

TEST(RunRecorder, EmptyRecorderSafeAccessors) {
  RunRecorder<1> Rec;
  EXPECT_EQ(Rec.massDrift(), 0.0);
  EXPECT_TRUE(Rec.samples().empty());
}
