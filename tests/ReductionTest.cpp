//===- tests/ReductionTest.cpp - fold/maxval/minval/sum tests -------------===//

#include "array/Reductions.h"
#include "array/WithLoop.h"
#include "runtime/Runtime.h"

#include <gtest/gtest.h>

#include <memory>

using namespace sacfd;

namespace {

struct ReduceCase {
  BackendKind Kind;
  unsigned Threads;

  std::string label() const {
    std::string S = backendKindName(Kind);
    S += "_t" + std::to_string(Threads);
    for (char &C : S)
      if (C == '-')
        C = '_';
    return S;
  }
};

class ReductionBackendTest : public ::testing::TestWithParam<ReduceCase> {
protected:
  void SetUp() override {
    Exec = createBackend(GetParam().Kind, GetParam().Threads);
  }
  std::unique_ptr<Backend> Exec;
};

NDArray<double> rampArray(size_t N) {
  NDArray<double> A(Shape{N});
  for (size_t I = 0; I < N; ++I)
    A[I] = static_cast<double>(I) - 10.0;
  return A;
}

} // namespace

TEST_P(ReductionBackendTest, SumOfRamp) {
  constexpr size_t N = 1001;
  NDArray<double> A = rampArray(N);
  double S = sum(A, *Exec);
  double Expected = (0.0 + 1000.0) * 1001.0 / 2.0 - 10.0 * 1001.0;
  EXPECT_DOUBLE_EQ(S, Expected);
}

TEST_P(ReductionBackendTest, MaxvalAndMinval) {
  NDArray<double> A = rampArray(257);
  EXPECT_EQ(maxval(A, *Exec), 246.0);
  EXPECT_EQ(minval(A, *Exec), -10.0);
}

TEST_P(ReductionBackendTest, MaxvalOfExpression) {
  // The getDt pattern: maxval over a lazily computed eigenvalue field.
  NDArray<double> A = rampArray(100);
  double M = maxval(fabsE(A) * 2.0 + 1.0, *Exec);
  EXPECT_EQ(M, 2.0 * 89.0 + 1.0);
}

TEST_P(ReductionBackendTest, SingleElementReduction) {
  NDArray<double> A(Shape{1}, 3.5);
  EXPECT_EQ(sum(A, *Exec), 3.5);
  EXPECT_EQ(maxval(A, *Exec), 3.5);
  EXPECT_EQ(minval(A, *Exec), 3.5);
}

TEST_P(ReductionBackendTest, SumOfEmptyIsZero) {
  NDArray<double> A(Shape{0});
  EXPECT_EQ(sum(A, *Exec), 0.0);
}

TEST_P(ReductionBackendTest, FoldWithCustomCombiner) {
  NDArray<double> A(Shape{64});
  for (size_t I = 0; I < 64; ++I)
    A[I] = (I % 7 == 0) ? -1.0 : 1.0;
  // Count negatives: map to an indicator first (fold requires a single
  // associative carrier type), then fold with +.
  long Negatives = fold(
      transform(A, [](double V) { return V < 0.0 ? 1L : 0L; }), 0L,
      [](long Acc, long V) { return Acc + V; }, *Exec);
  EXPECT_EQ(Negatives, 10);
}

TEST_P(ReductionBackendTest, TwoDimensionalReduction) {
  NDArray<double> A = withLoop(
      Shape{40, 25},
      *createBackend(BackendKind::Serial, 1), [](const Index &Iv) {
        return static_cast<double>(Iv[0]) * static_cast<double>(Iv[1]);
      });
  double M = maxval(A, *Exec);
  EXPECT_EQ(M, 39.0 * 24.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, ReductionBackendTest,
    ::testing::Values(ReduceCase{BackendKind::Serial, 1},
                      ReduceCase{BackendKind::SpinPool, 2},
                      ReduceCase{BackendKind::SpinPool, 4},
                      ReduceCase{BackendKind::ForkJoin, 2},
                      ReduceCase{BackendKind::ForkJoin, 4},
                      ReduceCase{BackendKind::Tasks, 2},
                      ReduceCase{BackendKind::Tasks, 4}),
    [](const ::testing::TestParamInfo<ReduceCase> &Info) {
      return Info.param.label();
    });

//===----------------------------------------------------------------------===//
// Determinism across worker counts and backends
//===----------------------------------------------------------------------===//

TEST(ReductionDeterminism, MaxIsExactAcrossAllConfigurations) {
  // max is associative+commutative in FP: every configuration must agree
  // bitwise.  This is why getDt() is backend-invariant.
  NDArray<double> A(Shape{777});
  unsigned Seed = 12345;
  for (size_t I = 0; I < A.size(); ++I) {
    Seed = Seed * 1664525u + 1013904223u;
    A[I] = static_cast<double>(Seed % 100000) * 1e-3 - 50.0;
  }
  auto Serial = createBackend(BackendKind::Serial, 1);
  double Ref = maxval(A, *Serial);
  for (BackendKind K : {BackendKind::SpinPool, BackendKind::ForkJoin,
                        BackendKind::Tasks})
    for (unsigned T : {1u, 2u, 3u, 4u, 7u}) {
      auto B = createBackend(K, T);
      EXPECT_EQ(maxval(A, *B), Ref)
          << backendKindName(K) << " threads=" << T;
    }
}

TEST(ReductionDeterminism, SumIsStableForFixedWorkerCount) {
  // The fold contract: result depends only on workerCount().  Same count,
  // different backend model => bitwise equal sums.
  NDArray<double> A(Shape{1000});
  unsigned Seed = 999;
  for (size_t I = 0; I < A.size(); ++I) {
    Seed = Seed * 22695477u + 1u;
    A[I] = static_cast<double>(Seed) * 1e-9;
  }
  for (unsigned T : {2u, 4u}) {
    auto Pool = createBackend(BackendKind::SpinPool, T);
    auto Fork = createBackend(BackendKind::ForkJoin, T);
    auto Task = createBackend(BackendKind::Tasks, T);
    EXPECT_EQ(sum(A, *Pool), sum(A, *Fork)) << "threads=" << T;
    EXPECT_EQ(sum(A, *Pool), sum(A, *Task)) << "threads=" << T;
    // And stable across repeated runs.
    EXPECT_EQ(sum(A, *Pool), sum(A, *Pool));
  }
}
