//===- tests/WithLoopTest.cpp - with-loop execution tests -----------------===//
//
// withLoop/assignInto/forEachIndex must behave identically on every
// backend; the suite is parameterized over the backend zoo.
//
//===----------------------------------------------------------------------===//

#include "array/WithLoop.h"
#include "runtime/Runtime.h"

#include <gtest/gtest.h>

#include <memory>

using namespace sacfd;

namespace {

struct LoopCase {
  BackendKind Kind;
  unsigned Threads;

  std::string label() const {
    std::string S = backendKindName(Kind);
    S += "_t" + std::to_string(Threads);
    for (char &C : S)
      if (C == '-')
        C = '_';
    return S;
  }
};

class WithLoopBackendTest : public ::testing::TestWithParam<LoopCase> {
protected:
  void SetUp() override {
    Exec = createBackend(GetParam().Kind, GetParam().Threads);
  }
  std::unique_ptr<Backend> Exec;
};

} // namespace

TEST_P(WithLoopBackendTest, GenarrayBuildsFromIndexFunction) {
  NDArray<double> Out = withLoop(Shape{13, 7}, *Exec, [](const Index &Iv) {
    return static_cast<double>(Iv[0] * 100 + Iv[1]);
  });
  ASSERT_EQ(Out.shape(), Shape({13, 7}));
  for (std::ptrdiff_t I = 0; I < 13; ++I)
    for (std::ptrdiff_t J = 0; J < 7; ++J)
      ASSERT_EQ(Out.at(I, J), static_cast<double>(I * 100 + J));
}

TEST_P(WithLoopBackendTest, ForEachIndexGivesConsistentLinearIndex) {
  Shape S{11, 5};
  std::vector<int> Seen(S.count(), 0);
  forEachIndex(S, *Exec, [&S, &Seen](const Index &Iv, size_t Linear) {
    ASSERT_EQ(S.linearize(Iv), Linear);
    ++Seen[Linear]; // disjoint ranges: no race
  });
  for (size_t I = 0; I < S.count(); ++I)
    ASSERT_EQ(Seen[I], 1) << "element " << I;
}

TEST_P(WithLoopBackendTest, AssignIntoOverwritesInPlace) {
  NDArray<double> A(Shape{64}, 2.0);
  NDArray<double> Out(Shape{64}, -1.0);
  assignInto(Out, toExpr(A) * 3.0 + 1.0, *Exec);
  for (size_t I = 0; I < 64; ++I)
    ASSERT_EQ(Out[I], 7.0);
}

TEST_P(WithLoopBackendTest, MaterializeEqualsSerialReference) {
  NDArray<double> A(Shape{9, 9});
  for (size_t I = 0; I < A.size(); ++I)
    A[I] = 0.25 * static_cast<double>(I) - 3.0;

  auto Ex = [&A] {
    return (drop(Index{1, 0}, A) - drop(Index{-1, 0}, A)) / 0.5;
  };

  auto Serial = createBackend(BackendKind::Serial, 1);
  NDArray<double> Ref = materialize(Ex(), *Serial);
  NDArray<double> Got = materialize(Ex(), *Exec);
  ASSERT_EQ(Ref.shape(), Got.shape());
  for (size_t I = 0; I < Ref.size(); ++I)
    ASSERT_EQ(Ref[I], Got[I]) << "bitwise backend equivalence";
}

TEST_P(WithLoopBackendTest, EmptyShapeProducesEmptyArray) {
  NDArray<double> Out =
      withLoop(Shape{0}, *Exec, [](const Index &) { return 1.0; });
  EXPECT_EQ(Out.size(), 0u);
}

TEST_P(WithLoopBackendTest, Rank1And2UseSameGenericCode) {
  // The paper reuses one function body for 1D and 2D; the with-loop is the
  // mechanism.  Evaluate the same index-sum body at both ranks.
  auto Body = [](const Index &Iv) {
    double Acc = 0;
    for (unsigned A = 0; A < Iv.Rank; ++A)
      Acc += static_cast<double>(Iv[A]);
    return Acc;
  };
  NDArray<double> One = withLoop(Shape{6}, *Exec, Body);
  NDArray<double> Two = withLoop(Shape{6, 6}, *Exec, Body);
  EXPECT_EQ(One.at(5), 5.0);
  EXPECT_EQ(Two.at(5, 5), 10.0);
  EXPECT_EQ(Two.at(2, 3), 5.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, WithLoopBackendTest,
    ::testing::Values(LoopCase{BackendKind::Serial, 1},
                      LoopCase{BackendKind::SpinPool, 2},
                      LoopCase{BackendKind::SpinPool, 4},
                      LoopCase{BackendKind::ForkJoin, 2},
                      LoopCase{BackendKind::ForkJoin, 4}),
    [](const ::testing::TestParamInfo<LoopCase> &Info) {
      return Info.param.label();
    });
