//===- tests/StepGuardTest.cpp - Breakdown detection/recovery tests -------===//
//
// Exercises the step guard end to end: the parallel health scan, the
// snapshot/rollback/dt-backoff loop, floor recovery, fault injection,
// structured breakdown reports, and the emergency checkpoint hook.  The
// CFL=10 Sod runs are the acceptance scenario: they break the unguarded
// solver and complete (or fail cleanly) under the guard, in Debug and
// Release builds alike.
//
//===----------------------------------------------------------------------===//

#include "io/Checkpoint.h"
#include "runtime/SerialBackend.h"
#include "runtime/SpinBarrierPool.h"
#include "solver/ArraySolver.h"
#include "solver/Diagnostics.h"
#include "solver/FusedSolver.h"
#include "solver/Problems.h"
#include "solver/RunRecorder.h"
#include "solver/StepGuard.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>

using namespace sacfd;

namespace {

SerialBackend Exec;

/// Unique scratch-file path per test.
std::string tempPath(const std::string &Name) {
  const ::testing::TestInfo *Info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + Info->test_suite_name() + "_" +
         Info->name() + "_" + Name;
}

/// Poisons one interior cell of \p S with NaN components.
template <unsigned Dim>
void poisonCell(EulerSolver<Dim> &S, size_t Linear) {
  const Grid<Dim> &G = S.problem().Domain;
  Shape Interior = G.interiorShape();
  const Index Storage = G.toStorage(Interior.delinearize(Linear));
  Cons<Dim> Q = S.field().at(Storage);
  for (unsigned K = 0; K < NumVars<Dim>; ++K)
    Q.setComp(K, std::numeric_limits<double>::quiet_NaN());
  S.field().set(Storage, Q);
}

/// The acceptance scenario: Sod at CFL = 10 (20x the stable step).
SchemeConfig cfl10Scheme() {
  SchemeConfig SC = SchemeConfig::figureScheme();
  SC.Cfl = 10.0;
  return SC;
}

} // namespace

//===----------------------------------------------------------------------===//
// Health scan
//===----------------------------------------------------------------------===//

TEST(HealthScan, MatchesSerialFieldHealthOnHealthyField) {
  ArraySolver<1> S(sodProblem(64), SchemeConfig::figureScheme(), Exec);
  S.advanceSteps(5);
  FieldHealth<1> H = fieldHealth(S);
  HealthScan Scan = scanFieldHealth(S, Exec, 1e-10, 1e-10);
  EXPECT_TRUE(Scan.healthy());
  EXPECT_TRUE(Scan.AllFinite);
  EXPECT_EQ(Scan.MinDensity, H.MinDensity);
  EXPECT_EQ(Scan.MinPressure, H.MinPressure);
}

TEST(HealthScan, DeterministicAcrossWorkerCounts) {
  ArraySolver<2> S(shockInteraction2D(24), SchemeConfig::figureScheme(),
                   Exec);
  S.advanceSteps(3);
  HealthScan Serial = scanFieldHealth(S, Exec, 1e-10, 1e-10);
  SpinBarrierPool Pool(4);
  HealthScan Parallel = scanFieldHealth(S, Pool, 1e-10, 1e-10);
  // Bit-identical minima: the block merge is order-deterministic.
  EXPECT_EQ(Serial.MinDensity, Parallel.MinDensity);
  EXPECT_EQ(Serial.MinPressure, Parallel.MinPressure);
  EXPECT_EQ(Serial.BadCells, Parallel.BadCells);
}

TEST(HealthScan, FindsPoisonedCells) {
  ArraySolver<1> S(sodProblem(64), SchemeConfig::figureScheme(), Exec);
  poisonCell(S, 17);
  poisonCell(S, 40);
  HealthScan Scan = scanFieldHealth(S, Exec, 1e-10, 1e-10);
  EXPECT_FALSE(Scan.healthy());
  EXPECT_FALSE(Scan.AllFinite);
  EXPECT_EQ(Scan.BadCells, 2u);
  ASSERT_EQ(Scan.Offenders.size(), 2u);
  EXPECT_EQ(Scan.Offenders[0], 17u);
  EXPECT_EQ(Scan.Offenders[1], 40u);
}

TEST(HealthScan, FlagsNegativePressureWithoutNan) {
  ArraySolver<1> S(sodProblem(64), SchemeConfig::figureScheme(), Exec);
  // Drain a cell's energy below its kinetic energy: finite but p < 0.
  const Grid<1> &G = S.problem().Domain;
  Cons<1> Q = S.field().at(G.toStorage(Index{10}));
  Q.E = -1.0;
  S.field().set(G.toStorage(Index{10}), Q);
  HealthScan Scan = scanFieldHealth(S, Exec, 1e-10, 1e-10);
  EXPECT_FALSE(Scan.healthy());
  EXPECT_TRUE(Scan.AllFinite) << "the cell is finite, just unphysical";
  EXPECT_EQ(Scan.BadCells, 1u);
  EXPECT_LT(Scan.MinPressure, 0.0);
}

TEST(HealthScan, OffenderListIsCapped) {
  ArraySolver<1> S(sodProblem(64), SchemeConfig::figureScheme(), Exec);
  for (size_t I = 0; I < 20; ++I)
    poisonCell(S, I);
  HealthScan Scan = scanFieldHealth(S, Exec, 1e-10, 1e-10, /*Max=*/4);
  EXPECT_EQ(Scan.BadCells, 20u);
  EXPECT_EQ(Scan.Offenders.size(), 4u);
}

//===----------------------------------------------------------------------===//
// Guarded stepping: healthy path
//===----------------------------------------------------------------------===//

TEST(StepGuard, HealthyRunIsBitIdenticalToUnguarded) {
  ArraySolver<1> Plain(sodProblem(64), SchemeConfig::figureScheme(), Exec);
  ArraySolver<1> Wrapped(sodProblem(64), SchemeConfig::figureScheme(),
                         Exec);
  StepGuard<1> Guard(Wrapped);

  Plain.advanceTo(0.1);
  EXPECT_TRUE(Guard.advanceTo(0.1));

  EXPECT_EQ(maxFieldDifference(Plain, Wrapped), 0.0);
  EXPECT_EQ(Plain.stepCount(), Wrapped.stepCount());
  EXPECT_EQ(Plain.time(), Wrapped.time());
  EXPECT_EQ(Guard.retriesTotal(), 0u);
  EXPECT_EQ(Guard.floorsTotal(), 0u);
  EXPECT_EQ(Guard.dtScale(), 1.0);
  EXPECT_TRUE(Guard.reports().empty());
}

TEST(StepGuard, GuardEveryCadenceAdvancesWholeWindows) {
  ArraySolver<1> S(sodProblem(32), SchemeConfig::benchmarkScheme(), Exec);
  StepGuard<1> Guard(S, [] {
    GuardConfig C;
    C.Every = 3;
    return C;
  }());
  EXPECT_TRUE(Guard.advanceSteps(4));
  // advanceSteps runs whole windows; target 4 with Every=3 lands on 6.
  EXPECT_EQ(S.stepCount(), 6u);
}

//===----------------------------------------------------------------------===//
// Fault injection and recovery
//===----------------------------------------------------------------------===//

TEST(StepGuard, RecoversFromTransientFault) {
  ArraySolver<1> S(sodProblem(64), SchemeConfig::figureScheme(), Exec);
  StepGuard<1> Guard(S);
  // One-shot fault after step 3: the scan fails once, the replay is
  // clean, and the run continues at half dt.
  Guard.injectFault(/*AfterStep=*/3, {11}, /*Persistent=*/false);

  EXPECT_TRUE(Guard.advanceSteps(6));
  EXPECT_FALSE(Guard.failed());
  EXPECT_EQ(Guard.retriesTotal(), 1u);
  EXPECT_EQ(Guard.floorsTotal(), 0u);
  EXPECT_TRUE(Guard.reports().empty()) << "a retry is not a breakdown";
  EXPECT_TRUE(scanFieldHealth(S, Exec, 1e-10, 1e-10).healthy());
}

TEST(StepGuard, DtScaleRecoversAfterHealthyWindows) {
  ArraySolver<1> S(sodProblem(64), SchemeConfig::figureScheme(), Exec);
  StepGuard<1> Guard(S);
  Guard.injectFault(/*AfterStep=*/1, {5}, /*Persistent=*/false);
  EXPECT_TRUE(Guard.advanceSteps(1)); // retried window: scale 0.5 -> 1.0
  EXPECT_EQ(Guard.retriesTotal(), 1u);
  EXPECT_EQ(Guard.dtScale(), 1.0) << "scale recovers on the healthy pass";
}

TEST(StepGuard, PersistentFaultFloorsAndContinues) {
  ArraySolver<1> S(sodProblem(64), SchemeConfig::figureScheme(), Exec);
  GuardConfig Cfg;
  Cfg.MaxRetries = 2;
  StepGuard<1> Guard(S, Cfg);
  // Persistent fault: re-fires on every rollback replay, so backoff can
  // never help and the floor stage must resolve the window.
  Guard.injectFault(/*AfterStep=*/2, {20, 21}, /*Persistent=*/true);

  EXPECT_TRUE(Guard.advanceSteps(4));
  EXPECT_FALSE(Guard.failed());
  EXPECT_GE(Guard.floorsTotal(), 1u);
  EXPECT_GE(Guard.flooredCellsTotal(), 2u);
  ASSERT_GE(Guard.reports().size(), 1u);

  const BreakdownReport &R = Guard.reports().front();
  EXPECT_EQ(R.Resolution, BreakdownResolution::FloorRecovered);
  EXPECT_EQ(R.Step, 1u) << "window-start snapshot is after step 1";
  EXPECT_GE(R.BadCells, 2u);
  EXPECT_FALSE(R.OffendingCells.empty());
  // Attempts: MaxRetries + 1 initial tries, plus the floor replay.
  ASSERT_EQ(R.DtHistory.size(), Cfg.MaxRetries + 2u);
  for (size_t I = 0; I + 1 < R.DtHistory.size(); ++I)
    EXPECT_EQ(R.DtHistory[I + 1], 0.5 * R.DtHistory[I])
        << "backoff must halve dt exactly (attempt " << I << ")";
  EXPECT_FALSE(R.str().empty());
}

TEST(StepGuard, PersistentFaultFailsCleanlyWithoutFloor) {
  ArraySolver<1> S(sodProblem(64), SchemeConfig::figureScheme(), Exec);
  std::vector<Cons<1>> InitialField(S.field().size());
  S.field().exportTo(InitialField.data());
  GuardConfig Cfg;
  Cfg.MaxRetries = 2;
  Cfg.AllowFloor = false;
  StepGuard<1> Guard(S, Cfg);
  Guard.injectFault(/*AfterStep=*/1, {30}, /*Persistent=*/true);

  GuardStepResult Res = Guard.advanceWindow();
  EXPECT_EQ(Res.Action, GuardAction::Failed);
  EXPECT_TRUE(Guard.failed());

  // The solver must sit at the last healthy state: the initial condition.
  EXPECT_EQ(S.stepCount(), 0u);
  EXPECT_EQ(S.time(), 0.0);
  ASSERT_EQ(S.field().size(), InitialField.size());
  for (size_t I = 0; I < InitialField.size(); ++I)
    EXPECT_EQ(S.field().load(I), InitialField[I]);

  ASSERT_EQ(Guard.reports().size(), 1u);
  const BreakdownReport &R = Guard.reports().front();
  EXPECT_EQ(R.Resolution, BreakdownResolution::Failed);
  EXPECT_EQ(R.Step, 0u);
  EXPECT_EQ(R.Time, 0.0);
  EXPECT_GE(R.BadCells, 1u);
  EXPECT_EQ(R.OffendingCells.front(), 30u);
  ASSERT_EQ(R.DtHistory.size(), Cfg.MaxRetries + 1u);
  for (size_t I = 0; I + 1 < R.DtHistory.size(); ++I)
    EXPECT_EQ(R.DtHistory[I + 1], 0.5 * R.DtHistory[I]);
  EXPECT_FALSE(R.CheckpointWritten);

  // A failed guard refuses further work.
  EXPECT_EQ(Guard.advanceWindow().Action, GuardAction::Failed);
  EXPECT_EQ(S.stepCount(), 0u);
  EXPECT_EQ(Guard.reports().size(), 1u) << "no duplicate reports";
}

TEST(StepGuard, EmergencyCheckpointSavesLastHealthyState) {
  std::string Path = tempPath("emergency.ckpt");
  ArraySolver<1> S(sodProblem(48), SchemeConfig::figureScheme(), Exec);
  GuardConfig Cfg;
  Cfg.MaxRetries = 1;
  Cfg.AllowFloor = false;
  StepGuard<1> Guard(S, Cfg);
  Guard.setEmergencyCheckpoint(Path, [&S](const std::string &P) {
    CheckpointStatus St = saveCheckpoint(P, S);
    return St.ok() ? std::string() : St.str();
  });
  // Let two windows succeed so the snapshot is mid-run, then break.
  EXPECT_EQ(Guard.advanceWindow().Action, GuardAction::Accepted);
  EXPECT_EQ(Guard.advanceWindow().Action, GuardAction::Accepted);
  Guard.injectFault(/*AfterStep=*/3, {7}, /*Persistent=*/true);
  EXPECT_EQ(Guard.advanceWindow().Action, GuardAction::Failed);

  ASSERT_EQ(Guard.reports().size(), 1u);
  const BreakdownReport &R = Guard.reports().front();
  EXPECT_TRUE(R.CheckpointWritten);
  EXPECT_EQ(R.CheckpointPath, Path);
  EXPECT_EQ(R.Step, 2u);

  // The checkpoint restores the last healthy state into a fresh solver.
  ArraySolver<1> Restored(sodProblem(48), SchemeConfig::figureScheme(),
                          Exec);
  ASSERT_TRUE(loadCheckpoint(Path, Restored).ok());
  EXPECT_EQ(Restored.stepCount(), R.Step);
  EXPECT_EQ(Restored.time(), R.Time);
  EXPECT_EQ(maxFieldDifference(Restored, S), 0.0);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// The acceptance scenario: Sod at CFL = 10
//===----------------------------------------------------------------------===//

TEST(StepGuard, CflTenSodBreaksWithoutGuard) {
  // Baseline for the recovery test: the unguarded run loses finiteness
  // and terminates without aborting (the containment clamps hold in
  // Debug builds too).  The dt clamp keeps the loop finite even once
  // EVmax goes NaN.
  ArraySolver<1> S(sodProblem(64), cfl10Scheme(), Exec);
  S.advanceTo(0.1);
  FieldHealth<1> H = fieldHealth(S);
  EXPECT_FALSE(H.AllFinite);
  EXPECT_TRUE(std::isnan(H.MinDensity)) << "no misleading partial minima";
}

template <typename SolverT>
static void runCflTenGuarded() {
  SolverT S(sodProblem(64), cfl10Scheme(), Exec);
  StepGuard<1> Guard(S);
  bool Ok = Guard.advanceTo(0.05);

  if (Ok) {
    EXPECT_GE(S.time(), 0.05);
    EXPECT_TRUE(Guard.retriesTotal() > 0 || Guard.floorsTotal() > 0)
        << "CFL=10 cannot survive without backoff or floors";
    EXPECT_TRUE(fieldHealth(S).AllFinite);
  } else {
    // A clean structured failure is also acceptable: the solver must be
    // healthy (restored) and the report populated.
    ASSERT_FALSE(Guard.reports().empty());
    EXPECT_EQ(Guard.reports().back().Resolution,
              BreakdownResolution::Failed);
    EXPECT_TRUE(fieldHealth(S).AllFinite);
  }
}

TEST(StepGuard, CflTenSodRecoversUnderGuardArrayEngine) {
  runCflTenGuarded<ArraySolver<1>>();
}

TEST(StepGuard, CflTenSodRecoversUnderGuardFusedEngine) {
  runCflTenGuarded<FusedSolver<1>>();
}

TEST(StepGuard, CflTenEnginesStayEquivalentUnderGuard) {
  // The guard must preserve engine bit-equivalence: identical scans,
  // identical rollbacks, identical dt scales.
  ArraySolver<1> A(sodProblem(48), cfl10Scheme(), Exec);
  FusedSolver<1> F(sodProblem(48), cfl10Scheme(), Exec);
  StepGuard<1> Ga(A), Gf(F);
  bool OkA = Ga.advanceTo(0.03);
  bool OkF = Gf.advanceTo(0.03);
  EXPECT_EQ(OkA, OkF);
  EXPECT_EQ(A.stepCount(), F.stepCount());
  EXPECT_EQ(Ga.retriesTotal(), Gf.retriesTotal());
  EXPECT_EQ(maxFieldDifference(A, F), 0.0);
}

//===----------------------------------------------------------------------===//
// dt clamp (satellite: EvMax == 0 division)
//===----------------------------------------------------------------------===//

template <typename SolverT>
static void runQuiescentZeroPressure() {
  // rho = 1, u = 0, p = 0: sound speed 0, EVmax = 0.  computeDt used to
  // return CFL / 0 = inf; the clamp must yield MaxDt and the (flux-free)
  // step must leave the field unchanged.
  Problem<1> P = sodProblem(32);
  P.InitialState = [](const std::array<double, 1> &) {
    Prim<1> W;
    W.Rho = 1.0;
    W.Vel[0] = 0.0;
    W.P = 0.0;
    return W;
  };
  SchemeConfig SC = SchemeConfig::benchmarkScheme();
  SC.MaxDt = 0.25;
  SolverT S(P, SC, Exec);

  double Dt = S.computeDt();
  EXPECT_TRUE(std::isfinite(Dt));
  EXPECT_EQ(Dt, SC.MaxDt);

  std::vector<Cons<1>> Before(S.field().size());
  S.field().exportTo(Before.data());
  S.advance();
  EXPECT_EQ(S.time(), SC.MaxDt);
  for (size_t I = 0; I < Before.size(); ++I)
    EXPECT_EQ(S.field().load(I), Before[I])
        << "quiescent zero-pressure gas must not evolve";
}

TEST(DtClamp, QuiescentZeroSoundSpeedArrayEngine) {
  runQuiescentZeroPressure<ArraySolver<1>>();
}

TEST(DtClamp, QuiescentZeroSoundSpeedFusedEngine) {
  runQuiescentZeroPressure<FusedSolver<1>>();
}

TEST(DtClamp, MaterializedModeClampsToo) {
  Problem<1> P = sodProblem(32);
  P.InitialState = [](const std::array<double, 1> &) {
    Prim<1> W;
    W.Rho = 1.0;
    return W; // u = 0, p = 0
  };
  SchemeConfig SC = SchemeConfig::benchmarkScheme();
  SC.MaxDt = 0.5;
  ArraySolver<1> S(P, SC, Exec, ArrayEvalMode::Materialized);
  EXPECT_EQ(S.computeDt(), 0.5);
}

TEST(DtClamp, PhysicalFieldsAreUnaffected) {
  // MaxDt far above the CFL step: dtFromMaxEigen must be the identity.
  ArraySolver<1> A(sodProblem(64), SchemeConfig::figureScheme(), Exec);
  FusedSolver<1> F(sodProblem(64), SchemeConfig::figureScheme(), Exec);
  double DtA = A.computeDt(), DtF = F.computeDt();
  EXPECT_EQ(DtA, DtF);
  EXPECT_GT(DtA, 0.0);
  EXPECT_LT(DtA, 1.0);
}

//===----------------------------------------------------------------------===//
// RunRecorder integration
//===----------------------------------------------------------------------===//

TEST(RunRecorderGuard, MirrorsBreakdownReports) {
  ArraySolver<1> S(sodProblem(64), SchemeConfig::figureScheme(), Exec);
  GuardConfig Cfg;
  Cfg.MaxRetries = 1;
  StepGuard<1> Guard(S, Cfg);
  Guard.injectFault(/*AfterStep=*/2, {9}, /*Persistent=*/true);

  RunRecorder<1> Rec;
  for (int I = 0; I < 4 && !Guard.failed(); ++I)
    Rec.advanceAndRecord(Guard);

  EXPECT_FALSE(Guard.failed()) << "floors should contain the fault";
  EXPECT_EQ(Rec.breakdowns().size(), Guard.reports().size());
  ASSERT_GE(Rec.breakdowns().size(), 1u);
  EXPECT_EQ(Rec.breakdowns().front().Resolution,
            BreakdownResolution::FloorRecovered);
  EXPECT_FALSE(Rec.samples().empty());
}

TEST(RunRecorderGuard, HealthyGuardedRunRecordsNormally) {
  ArraySolver<1> S(sodProblem(32), SchemeConfig::benchmarkScheme(), Exec);
  StepGuard<1> Guard(S);
  RunRecorder<1> Rec;
  for (int I = 0; I < 5; ++I)
    EXPECT_GT(Rec.advanceAndRecord(Guard), 0.0);
  EXPECT_EQ(Rec.samples().size(), 5u);
  EXPECT_TRUE(Rec.breakdowns().empty());
}
