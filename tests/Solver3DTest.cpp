//===- tests/Solver3DTest.cpp - 3D rank-generic extension tests -----------===//
//
// Beyond the paper: the same dimension-generic solver bodies instantiate
// at rank 3 (the logical endpoint of the paper's SaC rank-genericity
// argument).  These tests pin the 3D instantiation's physics: free-stream
// preservation, dimensional consistency with 1D, conservation, engine
// equivalence, and octant symmetry of a spherical blast.
//
//===----------------------------------------------------------------------===//

#include "runtime/SerialBackend.h"
#include "solver/ArraySolver.h"
#include "solver/Diagnostics.h"
#include "solver/FusedSolver.h"
#include "solver/Problems.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace sacfd;

namespace {

SerialBackend Exec;

} // namespace

TEST(Solver3D, PreservesUniformFlow) {
  SchemeConfig C = SchemeConfig::figureScheme();
  ArraySolver<3> S(uniformFlow3D(8), C, Exec);
  S.advanceSteps(4);
  for (std::ptrdiff_t I = 0; I < 8; ++I)
    for (std::ptrdiff_t J = 0; J < 8; ++J)
      for (std::ptrdiff_t K = 0; K < 8; ++K) {
        Prim<3> W = S.primitiveAt(Index{I, J, K});
        ASSERT_NEAR(W.Rho, 1.0, 1e-13);
        ASSERT_NEAR(W.Vel[0], 0.3, 1e-13);
        ASSERT_NEAR(W.Vel[1], -0.2, 1e-13);
        ASSERT_NEAR(W.Vel[2], 0.1, 1e-13);
        ASSERT_NEAR(W.P, 1.0, 1e-13);
      }
}

TEST(Solver3D, ExtrudedSodMatchesOneDimensionalSolver) {
  constexpr size_t N = 32;
  SchemeConfig C = SchemeConfig::figureScheme();

  ArraySolver<1> S1(sodProblem(N), C, Exec);
  ArraySolver<3> S3(sodExtruded3D(N, 4), C, Exec);

  // Step both with a common dt (the 3D EV includes transverse sound
  // speed terms, so its own dt is smaller).
  for (int Step = 0; Step < 10; ++Step) {
    double Dt = std::min(S1.computeDt(), S3.computeDt());
    S1.advanceTo(S1.time() + Dt);
    S3.advanceTo(S3.time() + Dt);
  }

  for (std::ptrdiff_t I = 0; I < static_cast<std::ptrdiff_t>(N); ++I) {
    Prim<1> W1 = S1.primitiveAt(Index{I});
    for (std::ptrdiff_t J = 0; J < 4; ++J)
      for (std::ptrdiff_t K = 0; K < 4; ++K) {
        Prim<3> W3 = S3.primitiveAt(Index{I, J, K});
        ASSERT_NEAR(W3.Rho, W1.Rho, 1e-11) << I << "," << J << "," << K;
        ASSERT_NEAR(W3.Vel[0], W1.Vel[0], 1e-11);
        ASSERT_NEAR(W3.Vel[1], 0.0, 1e-11);
        ASSERT_NEAR(W3.Vel[2], 0.0, 1e-11);
        ASSERT_NEAR(W3.P, W1.P, 1e-11);
      }
  }
}

TEST(Solver3D, SphericalBlastConservesMassAndEnergy) {
  SchemeConfig C = SchemeConfig::benchmarkScheme();
  ArraySolver<3> S(sphericalBlast3D(12), C, Exec);
  ConservedTotals<3> Before = conservedTotals(S);
  S.advanceSteps(8);
  ConservedTotals<3> After = conservedTotals(S);
  EXPECT_NEAR(After.Mass, Before.Mass, 1e-12 * Before.Mass);
  EXPECT_NEAR(After.Energy, Before.Energy, 1e-12 * Before.Energy);
  for (unsigned A = 0; A < 3; ++A)
    EXPECT_NEAR(After.Momentum[A], 0.0, 1e-11) << "axis " << A;
}

TEST(Solver3D, SphericalBlastKeepsOctantSymmetry) {
  SchemeConfig C = SchemeConfig::figureScheme();
  ArraySolver<3> S(sphericalBlast3D(10), C, Exec);
  S.advanceSteps(5);
  const Grid<3> &G = S.problem().Domain;
  // The blast center sits at the box center; the field must be symmetric
  // under every axis permutation (i, j, k) -> (j, i, k) etc.
  for (std::ptrdiff_t I = 0; I < 10; ++I)
    for (std::ptrdiff_t J = 0; J < 10; ++J)
      for (std::ptrdiff_t K = 0; K < 10; ++K) {
        double A = S.field().at(G.toStorage(Index{I, J, K})).Rho;
        double B = S.field().at(G.toStorage(Index{J, I, K})).Rho;
        double D = S.field().at(G.toStorage(Index{K, J, I})).Rho;
        ASSERT_NEAR(A, B, 1e-12);
        ASSERT_NEAR(A, D, 1e-12);
      }
  FieldHealth<3> H = fieldHealth(S);
  EXPECT_TRUE(H.AllFinite);
  EXPECT_GT(H.MinPressure, 0.0);
}

TEST(Solver3D, EnginesBitIdentical) {
  SchemeConfig C = SchemeConfig::benchmarkScheme();
  ArraySolver<3> A(sphericalBlast3D(10), C, Exec);
  FusedSolver<3> F(sphericalBlast3D(10), C, Exec);
  A.advanceSteps(5);
  F.advanceSteps(5);
  EXPECT_DOUBLE_EQ(A.time(), F.time());
  EXPECT_EQ(maxFieldDifference(A, F), 0.0);
}

TEST(Solver3D, GetDtCountsAllThreeAxes) {
  SchemeConfig C = SchemeConfig::figureScheme();
  ArraySolver<3> S3(uniformFlow3D(8), C, Exec);
  ArraySolver<2> S2(uniformFlow2D(8), C, Exec);
  // Same state, one more (|w|+c)/dz term: the 3D dt must be smaller.
  EXPECT_LT(S3.computeDt(), S2.computeDt());
}

TEST(Characteristics3D, RoundTripAtRankThree) {
  Gas G;
  Prim<3> W;
  W.Rho = 0.9;
  W.Vel = {0.4, -0.7, 0.2};
  W.P = 1.3;
  for (unsigned Axis = 0; Axis < 3; ++Axis) {
    EigenSystem<3> ES(roeAverage(W, W, G), G, Axis);
    Cons<3> Q = toCons(W, G);
    Cons<3> Back = ES.fromCharacteristic(ES.toCharacteristic(Q));
    for (unsigned K = 0; K < 5; ++K)
      EXPECT_NEAR(Back.comp(K), Q.comp(K), 1e-12) << "axis " << Axis;
  }
}

TEST(RiemannSolvers3D, ConsistencyAtRankThree) {
  Gas G;
  Prim<3> W;
  W.Rho = 1.2;
  W.Vel = {0.5, -0.1, 0.3};
  W.P = 0.8;
  Cons<3> Q = toCons(W, G);
  for (RiemannKind K : {RiemannKind::Rusanov, RiemannKind::Hll,
                        RiemannKind::Hllc, RiemannKind::Roe})
    for (unsigned Axis = 0; Axis < 3; ++Axis) {
      Cons<3> F = numericalFlux(K, Q, Q, G, Axis);
      Cons<3> Exact = physicalFlux(Q, G, Axis);
      for (unsigned Comp = 0; Comp < 5; ++Comp)
        EXPECT_NEAR(F.comp(Comp), Exact.comp(Comp), 1e-12)
            << riemannKindName(K) << " axis " << Axis;
    }
}
