//===- tests/CharacteristicsTest.cpp - Eigen-decomposition invariants -----===//
//
// The characteristic projection must satisfy, for any physical average
// state and axis:
//   (1) L R = I           (toCharacteristic inverts fromCharacteristic)
//   (2) A r_k = lambda_k r_k with A = dF/dQ (checked via finite
//       differences of the physical flux)
//   (3) eigenvalues ordered u-c <= u <= u+c
//
//===----------------------------------------------------------------------===//

#include "euler/Characteristics.h"
#include "euler/Flux.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace sacfd;

namespace {

template <unsigned Dim> Prim<Dim> randomPrim(unsigned &Seed) {
  auto Next = [&Seed] {
    Seed = Seed * 1664525u + 1013904223u;
    return static_cast<double>(Seed % 10000) / 10000.0;
  };
  Prim<Dim> W;
  W.Rho = 0.1 + 2.0 * Next();
  for (unsigned D = 0; D < Dim; ++D)
    W.Vel[D] = 3.0 * Next() - 1.5;
  W.P = 0.1 + 2.0 * Next();
  return W;
}

/// Finite-difference directional flux Jacobian times vector:
/// A v ~= (F(Q + eps v) - F(Q - eps v)) / (2 eps).
template <unsigned Dim>
Cons<Dim> jacobianApply(const Cons<Dim> &Q, const Cons<Dim> &V,
                        const Gas &G, unsigned Axis) {
  double Eps = 1e-7;
  Cons<Dim> Fp = physicalFlux(Q + V * Eps, G, Axis);
  Cons<Dim> Fm = physicalFlux(Q - V * Eps, G, Axis);
  return (Fp - Fm) / (2.0 * Eps);
}

template <unsigned Dim> void checkRoundTrip(unsigned Seed0) {
  Gas G;
  unsigned Seed = Seed0;
  for (int Trial = 0; Trial < 100; ++Trial) {
    Prim<Dim> Wl = randomPrim<Dim>(Seed);
    Prim<Dim> Wr = randomPrim<Dim>(Seed);
    for (unsigned Axis = 0; Axis < Dim; ++Axis) {
      EigenSystem<Dim> ES(roeAverage(Wl, Wr, G), G, Axis);
      Cons<Dim> Q = toCons(randomPrim<Dim>(Seed), G);
      Cons<Dim> Back = ES.fromCharacteristic(ES.toCharacteristic(Q));
      for (unsigned K = 0; K < NumVars<Dim>; ++K)
        ASSERT_NEAR(Back.comp(K), Q.comp(K),
                    1e-11 * (1.0 + std::fabs(Q.comp(K))))
            << "axis " << Axis << " comp " << K;
    }
  }
}

template <unsigned Dim> void checkEigenvectors(unsigned Seed0) {
  Gas G;
  unsigned Seed = Seed0;
  for (int Trial = 0; Trial < 50; ++Trial) {
    Prim<Dim> W = randomPrim<Dim>(Seed);
    for (unsigned Axis = 0; Axis < Dim; ++Axis) {
      // Use the Roe average of identical states: the decomposition is
      // then exactly the Jacobian eigensystem at W.
      EigenSystem<Dim> ES(roeAverage(W, W, G), G, Axis);
      Cons<Dim> Q = toCons(W, G);
      for (unsigned K = 0; K < NumVars<Dim>; ++K) {
        Cons<Dim> R = ES.rightVector(K);
        Cons<Dim> AR = jacobianApply(Q, R, G, Axis);
        for (unsigned J = 0; J < NumVars<Dim>; ++J)
          ASSERT_NEAR(AR.comp(J), ES.lambda(K) * R.comp(J), 2e-5)
              << "axis " << Axis << " wave " << K << " comp " << J;
      }
    }
  }
}

} // namespace

TEST(Characteristics, LeftInvertsRight1D) { checkRoundTrip<1>(11); }
TEST(Characteristics, LeftInvertsRight2D) { checkRoundTrip<2>(22); }

TEST(Characteristics, RightVectorsAreJacobianEigenvectors1D) {
  checkEigenvectors<1>(33);
}
TEST(Characteristics, RightVectorsAreJacobianEigenvectors2D) {
  checkEigenvectors<2>(44);
}

TEST(Characteristics, EigenvalueOrderingAndValues) {
  Gas G;
  Prim<2> W;
  W.Rho = 1.0;
  W.Vel = {0.75, -0.3};
  W.P = 1.0;
  FaceAverage<2> Avg = roeAverage(W, W, G);
  double C = G.soundSpeed(1.0, 1.0);

  EigenSystem<2> X(Avg, G, 0);
  EXPECT_NEAR(X.lambda(0), 0.75 - C, 1e-12);
  EXPECT_NEAR(X.lambda(1), 0.75, 1e-12);
  EXPECT_NEAR(X.lambda(2), 0.75, 1e-12);
  EXPECT_NEAR(X.lambda(3), 0.75 + C, 1e-12);

  EigenSystem<2> Y(Avg, G, 1);
  EXPECT_NEAR(Y.lambda(0), -0.3 - C, 1e-12);
  EXPECT_NEAR(Y.lambda(3), -0.3 + C, 1e-12);
}

TEST(RoeAverage, ReducesToStateForEqualInputs) {
  Gas G;
  Prim<2> W;
  W.Rho = 0.8;
  W.Vel = {1.1, -2.2};
  W.P = 0.6;
  FaceAverage<2> Avg = roeAverage(W, W, G);
  EXPECT_NEAR(Avg.Vel[0], 1.1, 1e-14);
  EXPECT_NEAR(Avg.Vel[1], -2.2, 1e-14);
  double E = G.totalEnergy(W.P, W.kineticEnergyDensity());
  EXPECT_NEAR(Avg.H, G.totalEnthalpy(W.Rho, W.P, E), 1e-13);
  EXPECT_NEAR(Avg.C, G.soundSpeed(W.Rho, W.P), 1e-13);
}

TEST(RoeAverage, IsBetweenStatesAndSqrtWeighted) {
  Gas G;
  Prim<1> L, R;
  L.Rho = 1.0;
  L.Vel = {0.0};
  L.P = 1.0;
  R.Rho = 4.0;
  R.Vel = {2.0};
  R.P = 1.0;
  FaceAverage<1> Avg = roeAverage(L, R, G);
  // sqrt-rho weights 1 and 2: u_roe = (0*1 + 2*2)/3.
  EXPECT_NEAR(Avg.Vel[0], 4.0 / 3.0, 1e-13);
  EXPECT_GT(Avg.C, 0.0);
}

TEST(SimpleAverage, MatchesArithmeticMeans) {
  Gas G;
  Prim<1> L, R;
  L.Rho = 1.0;
  L.Vel = {1.0};
  L.P = 2.0;
  R.Rho = 3.0;
  R.Vel = {3.0};
  R.P = 4.0;
  FaceAverage<1> Avg = simpleAverage(L, R, G);
  EXPECT_NEAR(Avg.Vel[0], 2.0, 1e-14);
  EXPECT_NEAR(Avg.C, G.soundSpeed(2.0, 3.0), 1e-14);
}

TEST(Characteristics, ContactWaveIsolatedByDecomposition) {
  // A pure density jump at equal u and p excites only the entropy wave.
  Gas G;
  Prim<1> L, R;
  L.Rho = 1.0;
  L.Vel = {0.4};
  L.P = 0.7;
  R = L;
  R.Rho = 2.5;

  EigenSystem<1> ES(roeAverage(L, R, G), G, 0);
  Cons<1> DQ = toCons(R, G) - toCons(L, G);
  auto W = ES.toCharacteristic(DQ);
  EXPECT_NEAR(W[0], 0.0, 1e-12) << "acoustic- amplitude";
  EXPECT_NEAR(W[2], 0.0, 1e-12) << "acoustic+ amplitude";
  EXPECT_GT(std::fabs(W[1]), 0.1) << "entropy amplitude carries the jump";
}

TEST(Characteristics, ShearWaveIsolatedByDecomposition2D) {
  // A pure tangential-velocity jump excites only the shear wave.
  Gas G;
  Prim<2> L, R;
  L.Rho = 1.0;
  L.Vel = {0.5, -1.0};
  L.P = 1.0;
  R = L;
  R.Vel[1] = 2.0;

  EigenSystem<2> ES(roeAverage(L, R, G), G, 0);
  Cons<2> DQ = toCons(R, G) - toCons(L, G);
  auto W = ES.toCharacteristic(DQ);
  EXPECT_NEAR(W[0], 0.0, 1e-12);
  EXPECT_NEAR(W[1], 0.0, 1e-12);
  EXPECT_NEAR(W[3], 0.0, 1e-12);
  EXPECT_GT(std::fabs(W[2]), 0.5);
}
