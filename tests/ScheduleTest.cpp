//===- tests/ScheduleTest.cpp - runtime/Schedule unit tests ---------------===//

#include "runtime/Schedule.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

using namespace sacfd;

TEST(ScheduleParse, AcceptsOmpScheduleGrammar) {
  EXPECT_EQ(Schedule::parse("static")->K, Schedule::Kind::StaticBlock);
  EXPECT_EQ(Schedule::parse("STATIC")->K, Schedule::Kind::StaticBlock);

  Schedule SC = Schedule::parse("static,16").value();
  EXPECT_EQ(SC.K, Schedule::Kind::StaticChunk);
  EXPECT_EQ(SC.ChunkSize, 16u);

  Schedule Dyn = Schedule::parse("dynamic").value();
  EXPECT_EQ(Dyn.K, Schedule::Kind::Dynamic);
  EXPECT_EQ(Dyn.ChunkSize, 0u);

  Schedule DynC = Schedule::parse(" dynamic , 4 ").value();
  EXPECT_EQ(DynC.K, Schedule::Kind::Dynamic);
  EXPECT_EQ(DynC.ChunkSize, 4u);
}

TEST(ScheduleParse, RejectsMalformedInput) {
  EXPECT_FALSE(Schedule::parse("guided").has_value());
  EXPECT_FALSE(Schedule::parse("static,0").has_value());
  EXPECT_FALSE(Schedule::parse("static,-4").has_value());
  EXPECT_FALSE(Schedule::parse("static,4,4").has_value());
  EXPECT_FALSE(Schedule::parse("").has_value());
  EXPECT_FALSE(Schedule::parse("dynamic,abc").has_value());
}

TEST(ScheduleStr, RoundTripsThroughParse) {
  for (const char *Text : {"static", "static,8", "dynamic", "dynamic,32"}) {
    Schedule S = Schedule::parse(Text).value();
    EXPECT_EQ(S.str(), Text);
    Schedule Again = Schedule::parse(S.str()).value();
    EXPECT_EQ(Again.K, S.K);
    EXPECT_EQ(Again.ChunkSize, S.ChunkSize);
  }
}

TEST(ScheduleChunk, ExplicitChunkWins) {
  Schedule S = Schedule::staticChunk(7);
  EXPECT_EQ(S.resolvedChunk(1000, 4), 7u);
  Schedule D = Schedule::dynamic(3);
  EXPECT_EQ(D.resolvedChunk(1000, 4), 3u);
}

TEST(ScheduleChunk, AutoChunkIsSaneForStaticBlock) {
  Schedule S = Schedule::staticBlock();
  EXPECT_EQ(S.resolvedChunk(100, 4), 25u);
  EXPECT_EQ(S.resolvedChunk(101, 4), 26u);
  EXPECT_EQ(S.resolvedChunk(3, 4), 1u);
}

TEST(ScheduleChunk, AutoChunkNeverZero) {
  Schedule D = Schedule::dynamic();
  EXPECT_GE(D.resolvedChunk(1, 16), 1u);
  EXPECT_GE(D.resolvedChunk(0, 16), 1u);
}

namespace {

/// Flattens a partition plan and checks it tiles [0, N) exactly once.
void expectExactTiling(
    const std::vector<std::vector<IterationChunk>> &Plan, size_t N) {
  std::vector<int> Touched(N, 0);
  for (const auto &WorkerChunks : Plan)
    for (const IterationChunk &C : WorkerChunks) {
      ASSERT_LE(C.Begin, C.End);
      ASSERT_LE(C.End, N);
      for (size_t I = C.Begin; I < C.End; ++I)
        ++Touched[I];
    }
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Touched[I], 1) << "iteration " << I;
}

struct PartitionCase {
  size_t N;
  unsigned Workers;
};

class StaticPartitionTest : public ::testing::TestWithParam<PartitionCase> {};

} // namespace

TEST_P(StaticPartitionTest, StaticBlockTilesExactly) {
  auto [N, Workers] = GetParam();
  auto Plan = staticPartition(N, Workers, Schedule::staticBlock());
  ASSERT_EQ(Plan.size(), Workers);
  expectExactTiling(Plan, N);
  // Block sizes differ by at most one.
  size_t Min = N, Max = 0;
  for (const auto &WorkerChunks : Plan) {
    size_t Total = 0;
    for (const IterationChunk &C : WorkerChunks)
      Total += C.End - C.Begin;
    Min = std::min(Min, Total);
    Max = std::max(Max, Total);
  }
  if (N >= Workers) {
    EXPECT_LE(Max - Min, 1u);
  }
}

TEST_P(StaticPartitionTest, StaticChunkTilesExactly) {
  auto [N, Workers] = GetParam();
  auto Plan = staticPartition(N, Workers, Schedule::staticChunk(3));
  ASSERT_EQ(Plan.size(), Workers);
  expectExactTiling(Plan, N);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StaticPartitionTest,
    ::testing::Values(PartitionCase{0, 1}, PartitionCase{0, 4},
                      PartitionCase{1, 1}, PartitionCase{1, 8},
                      PartitionCase{7, 3}, PartitionCase{8, 3},
                      PartitionCase{9, 3}, PartitionCase{100, 1},
                      PartitionCase{100, 7}, PartitionCase{1000, 16},
                      PartitionCase{16, 16}, PartitionCase{15, 16}));

TEST(ScheduleParseSpec, ReportsStructuredErrors) {
  // parse() is a thin wrapper over parseSpec(); the structured form must
  // name the offending input and the accepted grammar — no silent
  // fallback to StaticBlock.
  SpecParse<Schedule> Empty = Schedule::parseSpec("");
  EXPECT_FALSE(Empty);
  EXPECT_NE(Empty.Error.find("empty"), std::string::npos) << Empty.Error;

  SpecParse<Schedule> Unknown = Schedule::parseSpec("guided");
  EXPECT_FALSE(Unknown);
  EXPECT_NE(Unknown.Error.find("guided"), std::string::npos)
      << Unknown.Error;
  EXPECT_NE(Unknown.Error.find("static"), std::string::npos)
      << Unknown.Error;

  SpecParse<Schedule> BadChunk = Schedule::parseSpec("static,0");
  EXPECT_FALSE(BadChunk);
  EXPECT_NE(BadChunk.Error.find("chunk"), std::string::npos)
      << BadChunk.Error;

  SpecParse<Schedule> Extra = Schedule::parseSpec("static,4,4");
  EXPECT_FALSE(Extra);
  EXPECT_NE(Extra.Error.find("too many"), std::string::npos)
      << Extra.Error;

  SpecParse<Schedule> Ok = Schedule::parseSpec("dynamic,4");
  ASSERT_TRUE(Ok);
  EXPECT_TRUE(Ok.Error.empty());
  EXPECT_EQ(Ok.Value->K, Schedule::Kind::Dynamic);
}

TEST(TileParseSpec, AcceptsTheGrammar) {
  Tile Off = Tile::parseSpec("off").Value.value();
  EXPECT_FALSE(Off.Enabled);
  EXPECT_FALSE(Tile::parseSpec("none").Value.value().Enabled);

  Tile Auto = Tile::parseSpec("auto").Value.value();
  EXPECT_TRUE(Auto.Enabled);
  EXPECT_EQ(Auto.Rows, 0u);
  EXPECT_EQ(Auto.Cols, 0u);
  EXPECT_TRUE(Tile::parseSpec("on").Value.value().Enabled);

  Tile Square = Tile::parseSpec("16").Value.value();
  EXPECT_TRUE(Square.Enabled);
  EXPECT_EQ(Square.Rows, 16u);
  EXPECT_EQ(Square.Cols, 16u);

  Tile Rect = Tile::parseSpec(" 32x128 ").Value.value();
  EXPECT_TRUE(Rect.Enabled);
  EXPECT_EQ(Rect.Rows, 32u);
  EXPECT_EQ(Rect.Cols, 128u);
  EXPECT_EQ(Rect.str(), "32x128");
  EXPECT_EQ(Tile::off().str(), "off");
  EXPECT_EQ(Tile::automatic().str(), "auto");
}

TEST(TileParseSpec, RejectsMalformedSpecsWithStructuredErrors) {
  for (const char *Bad : {"", "0x4", "4x0", "4x", "x4", "axb", "-3",
                          "0", "3.5", "4x4x4"}) {
    SpecParse<Tile> P = Tile::parseSpec(Bad);
    EXPECT_FALSE(P) << "'" << Bad << "' should be rejected";
    EXPECT_FALSE(P.Error.empty()) << "'" << Bad << "'";
  }
}

namespace {

/// Checks the decomposition covers every (row, col) cell exactly once.
void expectExactTileCover(const TileGrid &G) {
  std::vector<int> Touched(G.rows() * G.cols(), 0);
  for (size_t T = 0; T < G.count(); ++T) {
    TileRect R = G.rect(T);
    ASSERT_LE(R.RowBegin, R.RowEnd);
    ASSERT_LE(R.RowEnd, G.rows());
    ASSERT_LE(R.ColBegin, R.ColEnd);
    ASSERT_LE(R.ColEnd, G.cols());
    for (size_t I = R.RowBegin; I < R.RowEnd; ++I)
      for (size_t J = R.ColBegin; J < R.ColEnd; ++J)
        ++Touched[I * G.cols() + J];
  }
  for (size_t I = 0; I < Touched.size(); ++I)
    EXPECT_EQ(Touched[I], 1) << "cell " << I;
}

} // namespace

TEST(TileGridTest, TilesTheSpaceExactly) {
  expectExactTileCover(TileGrid(100, 100, Tile::sized(32, 128)));
  expectExactTileCover(TileGrid(7, 3, Tile::sized(2, 2)));
  expectExactTileCover(TileGrid(64, 256, Tile::sized(32, 128)));
  expectExactTileCover(TileGrid(1, 1, Tile::automatic()));
  expectExactTileCover(TileGrid(33, 129, Tile::automatic()));
}

TEST(TileGridTest, ResolvesAutomaticAndClampsToExtents) {
  TileGrid Auto(1000, 1000, Tile::automatic());
  EXPECT_EQ(Auto.tileRows(), TileGrid::DefaultTileRows);
  EXPECT_EQ(Auto.tileCols(), TileGrid::DefaultTileCols);

  // Requested tiles larger than the space clamp to one tile.
  TileGrid Clamped(10, 20, Tile::sized(64, 64));
  EXPECT_EQ(Clamped.tileRows(), 10u);
  EXPECT_EQ(Clamped.tileCols(), 20u);
  EXPECT_EQ(Clamped.count(), 1u);

  TileGrid Empty(0, 50, Tile::automatic());
  EXPECT_EQ(Empty.count(), 0u);
}

TEST(TileGridTest, TileNumberingIsRowMajorAndWorkerIndependent) {
  // 5x7 space, 2x3 tiles: 3 tile rows x 3 tile cols, numbered row-major.
  TileGrid G(5, 7, Tile::sized(2, 3));
  ASSERT_EQ(G.rowTiles(), 3u);
  ASSERT_EQ(G.colTiles(), 3u);
  ASSERT_EQ(G.count(), 9u);
  TileRect First = G.rect(0);
  EXPECT_EQ(First.RowBegin, 0u);
  EXPECT_EQ(First.ColBegin, 0u);
  TileRect SecondRow = G.rect(3);
  EXPECT_EQ(SecondRow.RowBegin, 2u);
  EXPECT_EQ(SecondRow.ColBegin, 0u);
  TileRect Last = G.rect(8);
  EXPECT_EQ(Last.RowBegin, 4u);
  EXPECT_EQ(Last.RowEnd, 5u); // clipped edge tile
  EXPECT_EQ(Last.ColBegin, 6u);
  EXPECT_EQ(Last.ColEnd, 7u);
}

TEST(StaticPartition, RoundRobinAssignsChunksInOrder) {
  // 10 iterations, chunk 2, 3 workers: chunks [0,2)[2,4)[4,6)[6,8)[8,10)
  // dealt to workers 0,1,2,0,1.
  auto Plan = staticPartition(10, 3, Schedule::staticChunk(2));
  ASSERT_EQ(Plan[0].size(), 2u);
  ASSERT_EQ(Plan[1].size(), 2u);
  ASSERT_EQ(Plan[2].size(), 1u);
  EXPECT_EQ(Plan[0][0].Begin, 0u);
  EXPECT_EQ(Plan[0][1].Begin, 6u);
  EXPECT_EQ(Plan[1][0].Begin, 2u);
  EXPECT_EQ(Plan[1][1].Begin, 8u);
  EXPECT_EQ(Plan[2][0].Begin, 4u);
  EXPECT_EQ(Plan[2][0].End, 6u);
}
