//===- tests/ScheduleTest.cpp - runtime/Schedule unit tests ---------------===//

#include "runtime/Schedule.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

using namespace sacfd;

TEST(ScheduleParse, AcceptsOmpScheduleGrammar) {
  EXPECT_EQ(Schedule::parse("static")->K, Schedule::Kind::StaticBlock);
  EXPECT_EQ(Schedule::parse("STATIC")->K, Schedule::Kind::StaticBlock);

  Schedule SC = Schedule::parse("static,16").value();
  EXPECT_EQ(SC.K, Schedule::Kind::StaticChunk);
  EXPECT_EQ(SC.ChunkSize, 16u);

  Schedule Dyn = Schedule::parse("dynamic").value();
  EXPECT_EQ(Dyn.K, Schedule::Kind::Dynamic);
  EXPECT_EQ(Dyn.ChunkSize, 0u);

  Schedule DynC = Schedule::parse(" dynamic , 4 ").value();
  EXPECT_EQ(DynC.K, Schedule::Kind::Dynamic);
  EXPECT_EQ(DynC.ChunkSize, 4u);
}

TEST(ScheduleParse, RejectsMalformedInput) {
  EXPECT_FALSE(Schedule::parse("guided").has_value());
  EXPECT_FALSE(Schedule::parse("static,0").has_value());
  EXPECT_FALSE(Schedule::parse("static,-4").has_value());
  EXPECT_FALSE(Schedule::parse("static,4,4").has_value());
  EXPECT_FALSE(Schedule::parse("").has_value());
  EXPECT_FALSE(Schedule::parse("dynamic,abc").has_value());
}

TEST(ScheduleStr, RoundTripsThroughParse) {
  for (const char *Text : {"static", "static,8", "dynamic", "dynamic,32"}) {
    Schedule S = Schedule::parse(Text).value();
    EXPECT_EQ(S.str(), Text);
    Schedule Again = Schedule::parse(S.str()).value();
    EXPECT_EQ(Again.K, S.K);
    EXPECT_EQ(Again.ChunkSize, S.ChunkSize);
  }
}

TEST(ScheduleChunk, ExplicitChunkWins) {
  Schedule S = Schedule::staticChunk(7);
  EXPECT_EQ(S.resolvedChunk(1000, 4), 7u);
  Schedule D = Schedule::dynamic(3);
  EXPECT_EQ(D.resolvedChunk(1000, 4), 3u);
}

TEST(ScheduleChunk, AutoChunkIsSaneForStaticBlock) {
  Schedule S = Schedule::staticBlock();
  EXPECT_EQ(S.resolvedChunk(100, 4), 25u);
  EXPECT_EQ(S.resolvedChunk(101, 4), 26u);
  EXPECT_EQ(S.resolvedChunk(3, 4), 1u);
}

TEST(ScheduleChunk, AutoChunkNeverZero) {
  Schedule D = Schedule::dynamic();
  EXPECT_GE(D.resolvedChunk(1, 16), 1u);
  EXPECT_GE(D.resolvedChunk(0, 16), 1u);
}

namespace {

/// Flattens a partition plan and checks it tiles [0, N) exactly once.
void expectExactTiling(
    const std::vector<std::vector<IterationChunk>> &Plan, size_t N) {
  std::vector<int> Touched(N, 0);
  for (const auto &WorkerChunks : Plan)
    for (const IterationChunk &C : WorkerChunks) {
      ASSERT_LE(C.Begin, C.End);
      ASSERT_LE(C.End, N);
      for (size_t I = C.Begin; I < C.End; ++I)
        ++Touched[I];
    }
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Touched[I], 1) << "iteration " << I;
}

struct PartitionCase {
  size_t N;
  unsigned Workers;
};

class StaticPartitionTest : public ::testing::TestWithParam<PartitionCase> {};

} // namespace

TEST_P(StaticPartitionTest, StaticBlockTilesExactly) {
  auto [N, Workers] = GetParam();
  auto Plan = staticPartition(N, Workers, Schedule::staticBlock());
  ASSERT_EQ(Plan.size(), Workers);
  expectExactTiling(Plan, N);
  // Block sizes differ by at most one.
  size_t Min = N, Max = 0;
  for (const auto &WorkerChunks : Plan) {
    size_t Total = 0;
    for (const IterationChunk &C : WorkerChunks)
      Total += C.End - C.Begin;
    Min = std::min(Min, Total);
    Max = std::max(Max, Total);
  }
  if (N >= Workers) {
    EXPECT_LE(Max - Min, 1u);
  }
}

TEST_P(StaticPartitionTest, StaticChunkTilesExactly) {
  auto [N, Workers] = GetParam();
  auto Plan = staticPartition(N, Workers, Schedule::staticChunk(3));
  ASSERT_EQ(Plan.size(), Workers);
  expectExactTiling(Plan, N);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StaticPartitionTest,
    ::testing::Values(PartitionCase{0, 1}, PartitionCase{0, 4},
                      PartitionCase{1, 1}, PartitionCase{1, 8},
                      PartitionCase{7, 3}, PartitionCase{8, 3},
                      PartitionCase{9, 3}, PartitionCase{100, 1},
                      PartitionCase{100, 7}, PartitionCase{1000, 16},
                      PartitionCase{16, 16}, PartitionCase{15, 16}));

TEST(StaticPartition, RoundRobinAssignsChunksInOrder) {
  // 10 iterations, chunk 2, 3 workers: chunks [0,2)[2,4)[4,6)[6,8)[8,10)
  // dealt to workers 0,1,2,0,1.
  auto Plan = staticPartition(10, 3, Schedule::staticChunk(2));
  ASSERT_EQ(Plan[0].size(), 2u);
  ASSERT_EQ(Plan[1].size(), 2u);
  ASSERT_EQ(Plan[2].size(), 1u);
  EXPECT_EQ(Plan[0][0].Begin, 0u);
  EXPECT_EQ(Plan[0][1].Begin, 6u);
  EXPECT_EQ(Plan[1][0].Begin, 2u);
  EXPECT_EQ(Plan[1][1].Begin, 8u);
  EXPECT_EQ(Plan[2][0].Begin, 4u);
  EXPECT_EQ(Plan[2][0].End, 6u);
}
