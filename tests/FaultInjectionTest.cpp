//===- tests/FaultInjectionTest.cpp - I/O fault plan semantics ------------===//
//
// The fault-injection layer itself: spec parsing, one-shot trigger
// semantics, operation counting, and the exact byte-level behavior of
// each fault through the checked wrappers on plain files.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

using namespace sacfd;

namespace {

std::string tempPath(const char *Name) {
  return std::string(::testing::TempDir()) + "/" + Name;
}

struct FaultGuard {
  FaultGuard() { iofault::clear(); }
  ~FaultGuard() { iofault::clear(); }
};

/// Writes \p Text through fwriteChecked; \returns items reported written.
size_t writeFile(const std::string &Path, const char *Text) {
  std::FILE *F = iofault::fopenChecked(Path.c_str(), "wb");
  if (!F)
    return static_cast<size_t>(-1);
  size_t N = iofault::fwriteChecked(Text, 1, std::strlen(Text), F);
  std::fclose(F);
  return N;
}

/// On-disk byte count of \p Path via plain stdio; -1 when unopenable.
long fileBytes(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return -1;
  std::fseek(F, 0, SEEK_END);
  long Size = std::ftell(F);
  std::fclose(F);
  return Size;
}

} // namespace

TEST(FaultInjection, ParsesFullGrammar) {
  iofault::Plan P;
  std::string Err;
  ASSERT_TRUE(iofault::parsePlan(
      "fail-open=2,fail-write=3,short-write=4,torn-write=5,kill-write=6,"
      "bit-flip-read=7@12,fail-rename",
      P, Err))
      << Err;
  EXPECT_EQ(P.FailOpenNth, 2u);
  EXPECT_EQ(P.FailWriteNth, 3u);
  EXPECT_EQ(P.ShortWriteNth, 4u);
  EXPECT_EQ(P.TornWriteNth, 5u);
  EXPECT_EQ(P.KillWriteNth, 6u);
  EXPECT_EQ(P.BitFlipReadNth, 7u);
  EXPECT_EQ(P.BitFlipByte, 12);
  EXPECT_TRUE(P.FailRename);

  iofault::Plan Default;
  ASSERT_TRUE(iofault::parsePlan("bit-flip-read=1", Default, Err)) << Err;
  EXPECT_EQ(Default.BitFlipByte, -1) << "@byte is optional";

  iofault::Plan Empty;
  ASSERT_TRUE(iofault::parsePlan("", Empty, Err));
  EXPECT_FALSE(Empty.any());
}

TEST(FaultInjection, RejectsMalformedSpecs) {
  iofault::Plan P;
  P.FailOpenNth = 99; // must survive failed parses untouched
  for (const char *Bad : {"frob=1", "fail-write", "fail-write=x",
                          "fail-write=0", "bit-flip-read=1@zz",
                          "fail-rename=2"}) {
    std::string Err;
    EXPECT_FALSE(iofault::parsePlan(Bad, P, Err)) << Bad;
    EXPECT_FALSE(Err.empty()) << Bad;
    EXPECT_EQ(P.FailOpenNth, 99u) << Bad << ": output must be untouched";
  }
}

TEST(FaultInjection, FailOpenFiresOnceOnTheNthOpen) {
  FaultGuard FG;
  std::string Path = tempPath("fi_open.txt");
  iofault::Plan P;
  P.FailOpenNth = 2;
  iofault::setPlan(P);

  EXPECT_EQ(writeFile(Path, "first"), 5u) << "open 1 passes";
  EXPECT_EQ(writeFile(Path, "second"), static_cast<size_t>(-1))
      << "open 2 fails";
  EXPECT_EQ(iofault::faultsFired(), 1u);
  EXPECT_EQ(writeFile(Path, "third"), 5u) << "disarmed after firing";
  EXPECT_FALSE(iofault::plan().any());
  std::remove(Path.c_str());
}

TEST(FaultInjection, WriteFaultsHaveDistinctSemantics) {
  FaultGuard FG;
  std::string Path = tempPath("fi_write.txt");

  // fail-write: nothing written, failure reported.
  iofault::Plan P;
  P.FailWriteNth = 1;
  iofault::setPlan(P);
  EXPECT_EQ(writeFile(Path, "0123456789"), 0u);
  EXPECT_EQ(fileBytes(Path), 0);

  // short-write: half written, failure reported.
  P = {};
  P.ShortWriteNth = 1;
  iofault::setPlan(P);
  size_t Short = writeFile(Path, "0123456789");
  EXPECT_LT(Short, 10u);
  EXPECT_EQ(fileBytes(Path), 5);

  // torn-write: half written, SUCCESS reported — the tear is only
  // visible on disk.
  P = {};
  P.TornWriteNth = 1;
  iofault::setPlan(P);
  EXPECT_EQ(writeFile(Path, "0123456789"), 10u);
  EXPECT_EQ(fileBytes(Path), 5);
  std::remove(Path.c_str());
}

TEST(FaultInjection, BitFlipReadCorruptsExactlyOneBit) {
  FaultGuard FG;
  std::string Path = tempPath("fi_read.txt");
  ASSERT_EQ(writeFile(Path, "ABCDEFGH"), 8u);

  iofault::Plan P;
  P.BitFlipReadNth = 1;
  P.BitFlipByte = 3;
  iofault::setPlan(P);

  char Buf[9] = {};
  std::FILE *F = iofault::fopenChecked(Path.c_str(), "rb");
  ASSERT_NE(F, nullptr);
  ASSERT_EQ(iofault::freadChecked(Buf, 1, 8, F), 8u);
  std::fclose(F);
  EXPECT_STREQ(Buf, "ABCEEFGH") << "'D' xor 1 = 'E'";
  EXPECT_EQ(iofault::readOps(), 1u);

  // Second read is clean.
  F = iofault::fopenChecked(Path.c_str(), "rb");
  ASSERT_NE(F, nullptr);
  ASSERT_EQ(iofault::freadChecked(Buf, 1, 8, F), 8u);
  std::fclose(F);
  EXPECT_STREQ(Buf, "ABCDEFGH");
  std::remove(Path.c_str());
}

TEST(FaultInjection, FailRenameFiresOnce) {
  FaultGuard FG;
  std::string From = tempPath("fi_ren_a.txt");
  std::string To = tempPath("fi_ren_b.txt");
  ASSERT_EQ(writeFile(From, "x"), 1u);

  iofault::Plan P;
  P.FailRename = true;
  iofault::setPlan(P);
  EXPECT_NE(iofault::renameChecked(From.c_str(), To.c_str()), 0);
  EXPECT_EQ(fileBytes(From), 1) << "failed rename leaves the source";
  EXPECT_EQ(iofault::renameChecked(From.c_str(), To.c_str()), 0)
      << "disarmed after firing";
  EXPECT_EQ(fileBytes(To), 1);
  std::remove(To.c_str());
}

TEST(FaultInjection, CountersTrackOperationsSinceArming) {
  FaultGuard FG;
  std::string Path = tempPath("fi_count.txt");
  iofault::setPlan({}); // empty plan still resets the counters

  ASSERT_EQ(writeFile(Path, "abc"), 3u);
  std::FILE *F = iofault::fopenChecked(Path.c_str(), "rb");
  ASSERT_NE(F, nullptr);
  char Buf[4] = {};
  EXPECT_EQ(iofault::freadChecked(Buf, 1, 3, F), 3u);
  EXPECT_EQ(iofault::freadChecked(Buf, 1, 3, F), 0u) << "EOF still counts";
  std::fclose(F);

  EXPECT_EQ(iofault::writeOps(), 1u);
  EXPECT_EQ(iofault::readOps(), 2u);
  EXPECT_EQ(iofault::faultsFired(), 0u);
  std::remove(Path.c_str());
}
