//===- tests/IoTest.cpp - CSV/PGM/VTK/ASCII writer tests -------------------===//

#include "io/AsciiPlot.h"
#include "io/CsvWriter.h"
#include "io/FieldExport.h"
#include "io/PgmWriter.h"
#include "io/VtkWriter.h"
#include "runtime/SerialBackend.h"
#include "solver/ArraySolver.h"
#include "solver/Problems.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace sacfd;

namespace {

/// Temp-file path helper; files are cleaned up per test.
std::string tempPath(const char *Name) {
  return std::string(::testing::TempDir()) + "/" + Name;
}

std::string readAll(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

} // namespace

//===----------------------------------------------------------------------===//
// CSV
//===----------------------------------------------------------------------===//

TEST(CsvWriter, WritesHeaderAndRows) {
  std::string Path = tempPath("basic.csv");
  ASSERT_TRUE(writeCsv(Path, {"a", "b"}, {{1.0, 2.5}, {3.0, -4.0}}));
  EXPECT_EQ(readAll(Path), "a,b\n1,2.5\n3,-4\n");
  std::remove(Path.c_str());
}

TEST(CsvWriter, CreatesMissingParentDirectory) {
  // A bench pointed at an output directory that does not exist yet must
  // not fail after the run finished — the writer creates the directory.
  std::string Dir = tempPath("csv-new-dir/nested");
  std::string Path = Dir + "/x.csv";
  std::filesystem::remove_all(tempPath("csv-new-dir"));
  std::string Error;
  ASSERT_TRUE(writeCsv(Path, {"a"}, {{1.0}}, &Error)) << Error;
  EXPECT_TRUE(Error.empty());
  EXPECT_EQ(readAll(Path), "a\n1\n");
  std::filesystem::remove_all(tempPath("csv-new-dir"));
}

TEST(CsvWriter, FailsOnUnwritablePath) {
  // Parent "directory" is an existing regular file: creation cannot
  // succeed, and the error must name the path that failed.
  std::string Blocker = tempPath("csv-blocker");
  { std::ofstream(Blocker) << "x"; }
  std::string Path = Blocker + "/x.csv";
  std::string Error;
  EXPECT_FALSE(writeCsv(Path, {"a"}, {{1.0}}, &Error));
  EXPECT_NE(Error.find("cannot create directory"), std::string::npos)
      << Error;
  EXPECT_NE(Error.find(Blocker), std::string::npos) << Error;

  // Opening a directory as the CSV file itself fails at fopen.
  Error.clear();
  EXPECT_FALSE(
      writeCsv(std::string(::testing::TempDir()), {"a"}, {{1.0}}, &Error));
  EXPECT_NE(Error.find("cannot open"), std::string::npos) << Error;
  std::remove(Blocker.c_str());
}

TEST(CsvWriter, ProfileRoundTrip) {
  std::string Path = tempPath("profile.csv");
  std::vector<ProfileSample> Profile = {{0.5, 1.0, 0.0, 1.0},
                                        {1.5, 0.125, 0.0, 0.1}};
  ASSERT_TRUE(writeProfileCsv(Path, Profile));
  std::string Contents = readAll(Path);
  EXPECT_NE(Contents.find("x,rho,u,p\n"), std::string::npos);
  EXPECT_NE(Contents.find("0.5,1,0,1\n"), std::string::npos);
  EXPECT_NE(Contents.find("1.5,0.125,0,0.1\n"), std::string::npos);
  std::remove(Path.c_str());
}

TEST(CsvWriter, HighPrecisionValuesSurvive) {
  std::string Path = tempPath("precision.csv");
  double V = 0.123456789012;
  ASSERT_TRUE(writeCsv(Path, {"v"}, {{V}}));
  std::string Contents = readAll(Path);
  EXPECT_NE(Contents.find("0.123456789012"), std::string::npos);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// PGM
//===----------------------------------------------------------------------===//

TEST(PgmWriter, HeaderAndPixelCount) {
  NDArray<double> F(Shape{4, 3});
  for (size_t I = 0; I < F.size(); ++I)
    F[I] = static_cast<double>(I);
  std::string Path = tempPath("field.pgm");
  ASSERT_TRUE(writePgm(Path, F));
  std::string Contents = readAll(Path);
  EXPECT_EQ(Contents.substr(0, 11), "P5\n4 3\n255\n");
  EXPECT_EQ(Contents.size(), 11u + 12u) << "4x3 pixels after the header";
  std::remove(Path.c_str());
}

TEST(PgmWriter, NormalizesToFullRange) {
  NDArray<double> F(Shape{2, 1});
  F.at(0, 0) = -5.0;
  F.at(1, 0) = 7.0;
  std::string Path = tempPath("range.pgm");
  ASSERT_TRUE(writePgm(Path, F));
  std::string Contents = readAll(Path);
  ASSERT_EQ(Contents.size(), 11u + 2u);
  EXPECT_EQ(static_cast<unsigned char>(Contents[11]), 0u);
  EXPECT_EQ(static_cast<unsigned char>(Contents[12]), 255u);
  std::remove(Path.c_str());
}

TEST(PgmWriter, FixedRangeClampsOutliers) {
  NDArray<double> F(Shape{2, 1});
  F.at(0, 0) = -100.0;
  F.at(1, 0) = 0.5;
  std::string Path = tempPath("clamp.pgm");
  ASSERT_TRUE(writePgm(Path, F, PgmRange{0.0, 1.0}));
  std::string Contents = readAll(Path);
  EXPECT_EQ(static_cast<unsigned char>(Contents[11]), 0u) << "clamped";
  EXPECT_EQ(static_cast<unsigned char>(Contents[12]), 127u);
  std::remove(Path.c_str());
}

TEST(PgmWriter, RejectsNon2DFields) {
  NDArray<double> F1(Shape{5});
  EXPECT_FALSE(writePgm(tempPath("bad.pgm"), F1));
  NDArray<double> F0(Shape{0, 4});
  EXPECT_FALSE(writePgm(tempPath("bad2.pgm"), F0));
}

TEST(PgmWriter, ConstantFieldIsMidGray) {
  // Degenerate range (Hi == Lo): the image must come out mid-gray, not
  // all-black — a flat field is "no contrast", not "no signal".
  NDArray<double> F(Shape{3, 3}, 2.0);
  std::string Path = tempPath("const.pgm");
  ASSERT_TRUE(writePgm(Path, F));
  std::string Contents = readAll(Path);
  ASSERT_EQ(Contents.size(), 11u + 9u);
  for (size_t I = 11; I < Contents.size(); ++I)
    EXPECT_EQ(static_cast<unsigned char>(Contents[I]), 128u);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// ASCII plots
//===----------------------------------------------------------------------===//

TEST(AsciiPlot, LinePlotShowsRangeAndMarks) {
  std::vector<double> V;
  for (int I = 0; I < 100; ++I)
    V.push_back(static_cast<double>(I));
  std::string Plot = asciiLinePlot(V, 40, 8);
  EXPECT_NE(Plot.find('*'), std::string::npos);
  EXPECT_NE(Plot.find("99"), std::string::npos) << "max annotated";
  EXPECT_NE(Plot.find(" 0 "), std::string::npos) << "min annotated";
}

TEST(AsciiPlot, HandlesEmptyAndConstantInput) {
  EXPECT_EQ(asciiLinePlot({}), "(empty plot)\n");
  std::string Plot = asciiLinePlot({3.0, 3.0, 3.0}, 10, 4);
  EXPECT_NE(Plot.find('*'), std::string::npos);
}

TEST(AsciiPlot, FieldMapUsesRampExtremes) {
  NDArray<double> F(Shape{8, 8});
  for (size_t I = 0; I < F.size(); ++I)
    F[I] = static_cast<double>(I);
  std::string Map = asciiFieldMap(F, 8, 8);
  EXPECT_NE(Map.find(' '), std::string::npos) << "low values blank";
  EXPECT_NE(Map.find('@'), std::string::npos) << "high values solid";
  EXPECT_EQ(asciiFieldMap(NDArray<double>(Shape{3})),
            "(not a 2D field)\n");
}

//===----------------------------------------------------------------------===//
// VTK + field export
//===----------------------------------------------------------------------===//

TEST(VtkWriter, EmitsWellFormedLegacyFile) {
  SerialBackend Exec;
  ArraySolver<2> S(uniformFlow2D(4), SchemeConfig::benchmarkScheme(),
                   Exec);
  std::string Path = tempPath("field.vtk");
  ASSERT_TRUE(writeVtk(Path, S));
  std::string Contents = readAll(Path);
  EXPECT_NE(Contents.find("# vtk DataFile Version 3.0"),
            std::string::npos);
  EXPECT_NE(Contents.find("DIMENSIONS 4 4 1"), std::string::npos);
  EXPECT_NE(Contents.find("POINT_DATA 16"), std::string::npos);
  EXPECT_NE(Contents.find("SCALARS density double 1"), std::string::npos);
  EXPECT_NE(Contents.find("SCALARS pressure double 1"),
            std::string::npos);
  EXPECT_NE(Contents.find("VECTORS velocity double"), std::string::npos);
  std::remove(Path.c_str());
}

TEST(FieldExport, ScalarFieldMatchesPrimitiveAccess) {
  SerialBackend Exec;
  ArraySolver<2> S(riemann2D(8), SchemeConfig::benchmarkScheme(), Exec);
  NDArray<double> Rho = scalarField(S, FieldQuantity::Density);
  NDArray<double> P = scalarField(S, FieldQuantity::Pressure);
  ASSERT_EQ(Rho.shape(), Shape({8, 8}));
  for (std::ptrdiff_t I = 0; I < 8; ++I)
    for (std::ptrdiff_t J = 0; J < 8; ++J) {
      Prim<2> W = S.primitiveAt(Index{I, J});
      EXPECT_EQ(Rho.at(I, J), W.Rho);
      EXPECT_EQ(P.at(I, J), W.P);
    }
}

TEST(FieldExport, MachNumberQuantity) {
  Gas G;
  Prim<2> W;
  W.Rho = 1.0;
  W.Vel = {3.0, 4.0};
  W.P = 1.0;
  double M = sampleQuantity(W, G, FieldQuantity::MachNumber);
  EXPECT_NEAR(M, 5.0 / G.soundSpeed(1.0, 1.0), 1e-13);
}

TEST(FieldExport, SchlierenDarkAtSteepGradients) {
  SerialBackend Exec;
  ArraySolver<2> S(riemann2D(16), SchemeConfig::benchmarkScheme(), Exec);
  NDArray<double> Sch = schlierenField(S);
  ASSERT_EQ(Sch.shape(), Shape({16, 16}));
  double Min = 1.0, Max = 0.0;
  for (size_t I = 0; I < Sch.size(); ++I) {
    EXPECT_GE(Sch[I], 0.0);
    EXPECT_LE(Sch[I], 1.0);
    Min = std::min(Min, Sch[I]);
    Max = std::max(Max, Sch[I]);
  }
  EXPECT_LT(Min, 0.1) << "discontinuities show dark";
  EXPECT_GT(Max, 0.9) << "smooth regions show light";
}

TEST(FieldExport, SchlierenOfUniformFieldIsUniform) {
  SerialBackend Exec;
  ArraySolver<2> S(uniformFlow2D(8), SchemeConfig::benchmarkScheme(),
                   Exec);
  NDArray<double> Sch = schlierenField(S);
  for (size_t I = 0; I < Sch.size(); ++I)
    EXPECT_EQ(Sch[I], 1.0);
}

TEST(FieldExport, ProfileOfReturnsOrderedSamples) {
  SerialBackend Exec;
  ArraySolver<1> S(sodProblem(16), SchemeConfig::benchmarkScheme(), Exec);
  std::vector<ProfileSample> P = profileOf(S);
  ASSERT_EQ(P.size(), 16u);
  EXPECT_NEAR(P.front().X, 1.0 / 32.0, 1e-14);
  EXPECT_NEAR(P.back().X, 31.0 / 32.0, 1e-14);
  EXPECT_EQ(P.front().Rho, 1.0);
  EXPECT_EQ(P.back().Rho, 0.125);
}
