//===- tests/KernelsTest.cpp - kernels:: scalar/SIMD bit-identity ---------===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
//
// The contract of the kernel layer, asserted bit-for-bit:
//   1. simdimpl:: == scalarimpl:: on every kernel, both layouts, over
//      ragged run lengths (tails shorter than any vector width included);
//   2. scalarimpl:: == the reference per-cell arithmetic the engines
//      always ran (Cons operators, numericalFlux), so routing a stage
//      through kernels:: cannot move a single bit;
//   3. non-finite states (the step-guard's world) keep 1 and 2 true.
//
//===----------------------------------------------------------------------===//

#include "kernels/Kernels.h"

#include "array/Layout.h"

#include "gtest/gtest.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

using namespace sacfd;
using namespace sacfd::kernels;

namespace {

// Ragged lengths: below, at, and astride every plausible vector width.
const size_t kLengths[] = {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 64, 97};

template <unsigned Dim> struct Buffers {
  // AoS records plus an equivalent SoA image (padded planes).
  std::vector<Cons<Dim>> Aos;
  std::vector<double> Soa;
  size_t Plane = 0;

  explicit Buffers(const std::vector<Cons<Dim>> &Cells)
      : Aos(Cells), Plane(paddedCount(Cells.size())),
        SoaStore(NumVars<Dim> * paddedCount(Cells.size()), 0.0) {
    Soa = SoaStore;
    for (size_t I = 0; I < Cells.size(); ++I)
      for (unsigned K = 0; K < NumVars<Dim>; ++K)
        Soa[K * Plane + I] = Cells[I].comp(K);
  }

  Run<Dim> aos() { return aosRun<Dim>(Aos.data()); }
  Run<Dim> soa() { return soaRun<Dim>(Soa.data(), Plane, 0); }

private:
  std::vector<double> SoaStore;
};

// Deterministic state soup: mostly physical states across many decades,
// sprinkled with near-vacuum and a few broken (NaN / negative-density)
// cells so the guard's world is covered too.
template <unsigned Dim>
std::vector<Cons<Dim>> randomStates(size_t N, uint64_t Seed,
                                    bool IncludeBroken) {
  std::mt19937_64 Rng(Seed);
  std::uniform_real_distribution<double> Mag(-3.0, 3.0);
  std::uniform_real_distribution<double> Uni(0.0, 1.0);
  Gas G;
  std::vector<Cons<Dim>> Out(N);
  for (size_t I = 0; I < N; ++I) {
    Prim<Dim> W;
    W.Rho = std::pow(10.0, Mag(Rng));
    W.P = std::pow(10.0, Mag(Rng));
    for (unsigned D = 0; D < Dim; ++D)
      W.Vel[D] = 20.0 * (Uni(Rng) - 0.5);
    Out[I] = toCons(W, G);
    if (IncludeBroken && Uni(Rng) < 0.1) {
      double Bad = Uni(Rng) < 0.5 ? std::numeric_limits<double>::quiet_NaN()
                                  : -W.Rho;
      Out[I].setComp(static_cast<unsigned>(Rng() % NumVars<Dim>), Bad);
    }
  }
  return Out;
}

template <unsigned Dim>
void expectBitEqual(const Buffers<Dim> &A, const Buffers<Dim> &B, size_t N,
                    const char *What) {
  for (size_t I = 0; I < N; ++I)
    for (unsigned K = 0; K < NumVars<Dim>; ++K) {
      double X = A.Aos[I].comp(K);
      double Y = B.Aos[I].comp(K);
      ASSERT_EQ(std::memcmp(&X, &Y, sizeof X), 0)
          << What << " cell " << I << " comp " << K << ": " << X
          << " != " << Y;
    }
}

template <unsigned Dim>
void expectSoaMatchesAos(Buffers<Dim> &B, size_t N, const char *What) {
  for (size_t I = 0; I < N; ++I)
    for (unsigned K = 0; K < NumVars<Dim>; ++K) {
      double X = B.Aos[I].comp(K);
      double Y = B.Soa[K * B.Plane + I];
      ASSERT_EQ(std::memcmp(&X, &Y, sizeof X), 0)
          << What << " soa/aos cell " << I << " comp " << K;
    }
}

// -------------------------------------------------------------------------
// sspUpdate: scalar == simd == the engines' Cons arithmetic.

template <unsigned Dim> void checkSspUpdate(uint64_t Seed, bool Broken) {
  const double A = 0.75, B = 0.25, Dt = 1.3e-3;
  for (size_t N : kLengths) {
    auto U0 = randomStates<Dim>(N, Seed, Broken);
    auto Un = randomStates<Dim>(N, Seed + 1, Broken);
    auto Rs = randomStates<Dim>(N, Seed + 2, Broken);

    // Reference: the ArraySolver update expression.
    std::vector<Cons<Dim>> Ref(N);
    for (size_t I = 0; I < N; ++I)
      Ref[I] = Un[I] * A + (U0[I] + Rs[I] * Dt) * B;

    for (bool Simd : {false, true}) {
      Buffers<Dim> Bu(U0), Bn(Un), Br(Rs);
      sspUpdate<Dim>(Bu.aos(), ConstRun<Dim>(Bn.aos()),
                     ConstRun<Dim>(Br.aos()), A, B, Dt, N, Simd);
      sspUpdate<Dim>(Bu.soa(), ConstRun<Dim>(Bn.soa()),
                     ConstRun<Dim>(Br.soa()), A, B, Dt, N, Simd);
      for (size_t I = 0; I < N; ++I)
        for (unsigned K = 0; K < NumVars<Dim>; ++K) {
          double X = Ref[I].comp(K), Y = Bu.Aos[I].comp(K);
          ASSERT_EQ(std::memcmp(&X, &Y, sizeof X), 0)
              << "sspUpdate simd=" << Simd << " N=" << N << " cell " << I;
        }
      expectSoaMatchesAos(Bu, N, "sspUpdate");
    }
  }
}

TEST(Kernels, SspUpdateBitIdentity1D) { checkSspUpdate<1>(7, false); }
TEST(Kernels, SspUpdateBitIdentity2D) { checkSspUpdate<2>(11, false); }
TEST(Kernels, SspUpdateBitIdentity3D) { checkSspUpdate<3>(13, false); }
TEST(Kernels, SspUpdateBrokenStates) { checkSspUpdate<2>(17, true); }

// -------------------------------------------------------------------------
// maxEigen: scalar == simd == the per-cell max chain.

template <unsigned Dim> void checkMaxEigen(uint64_t Seed, bool Broken) {
  Gas G;
  double InvDx[3] = {10.0, 20.0, 40.0};
  for (size_t N : kLengths) {
    auto U = randomStates<Dim>(N, Seed, Broken);

    // Reference: the engines' sequential chain.
    double Ref = 0.0;
    for (size_t I = 0; I < N; ++I) {
      Prim<Dim> W = toPrim(U[I], G);
      double Ev = 0.0;
      for (unsigned D = 0; D < Dim; ++D)
        Ev += maxWaveSpeed(W, G, D) * InvDx[D];
      Ref = std::max(Ref, Ev);
    }

    for (bool Simd : {false, true}) {
      Buffers<Dim> Bu(U);
      double FromAos =
          maxEigen<Dim>(ConstRun<Dim>(Bu.aos()), G, InvDx, 0.0, N, Simd);
      double FromSoa =
          maxEigen<Dim>(ConstRun<Dim>(Bu.soa()), G, InvDx, 0.0, N, Simd);
      ASSERT_EQ(std::memcmp(&FromAos, &Ref, sizeof Ref), 0)
          << "maxEigen simd=" << Simd << " N=" << N << " got " << FromAos
          << " want " << Ref;
      ASSERT_EQ(std::memcmp(&FromSoa, &Ref, sizeof Ref), 0)
          << "maxEigen soa simd=" << Simd << " N=" << N;
    }
  }
}

TEST(Kernels, MaxEigenBitIdentity1D) { checkMaxEigen<1>(23, false); }
TEST(Kernels, MaxEigenBitIdentity2D) { checkMaxEigen<2>(29, false); }
TEST(Kernels, MaxEigenBitIdentity3D) { checkMaxEigen<3>(31, false); }
TEST(Kernels, MaxEigenBrokenStates) { checkMaxEigen<2>(37, true); }

// -------------------------------------------------------------------------
// fluxFaces: scalar == numericalFlux reference; simd == scalar, per
// solver kind, per axis, ragged lengths, broken states included.

template <unsigned Dim>
void checkFluxFaces(RiemannKind Kind, uint64_t Seed, bool Broken) {
  Gas G;
  for (size_t N : kLengths) {
    auto L = randomStates<Dim>(N, Seed, Broken);
    auto R = randomStates<Dim>(N, Seed + 5, Broken);
    for (unsigned Axis = 0; Axis < Dim; ++Axis) {
      std::vector<Cons<Dim>> Ref(N);
      for (size_t I = 0; I < N; ++I)
        Ref[I] = numericalFlux(Kind, L[I], R[I], G, Axis);

      for (bool Simd : {false, true}) {
        Buffers<Dim> Bl(L), Br(R), Bf{std::vector<Cons<Dim>>(N)};
        fluxFaces<Dim>(ConstRun<Dim>(Bl.aos()), ConstRun<Dim>(Br.aos()),
                       Bf.aos(), G, Axis, Kind, N, Simd);
        fluxFaces<Dim>(ConstRun<Dim>(Bl.soa()), ConstRun<Dim>(Br.soa()),
                       Bf.soa(), G, Axis, Kind, N, Simd);
        for (size_t I = 0; I < N; ++I)
          for (unsigned K = 0; K < NumVars<Dim>; ++K) {
            double X = Ref[I].comp(K), Y = Bf.Aos[I].comp(K);
            ASSERT_EQ(std::memcmp(&X, &Y, sizeof X), 0)
                << riemannKindName(Kind) << " aos simd=" << Simd << " N=" << N
                << " axis=" << Axis << " cell " << I << " comp " << K << ": "
                << X << " != " << Y;
            double Z = Bf.Soa[K * Bf.Plane + I];
            ASSERT_EQ(std::memcmp(&X, &Z, sizeof X), 0)
                << riemannKindName(Kind) << " soa simd=" << Simd << " N=" << N
                << " axis=" << Axis << " cell " << I << " comp " << K << ": "
                << X << " != " << Z;
          }
      }
    }
  }
}

TEST(Kernels, FluxRusanov1D) { checkFluxFaces<1>(RiemannKind::Rusanov, 41, false); }
TEST(Kernels, FluxRusanov2D) { checkFluxFaces<2>(RiemannKind::Rusanov, 43, false); }
TEST(Kernels, FluxHll1D) { checkFluxFaces<1>(RiemannKind::Hll, 47, false); }
TEST(Kernels, FluxHll2D) { checkFluxFaces<2>(RiemannKind::Hll, 53, false); }
TEST(Kernels, FluxHllc1D) { checkFluxFaces<1>(RiemannKind::Hllc, 59, false); }
TEST(Kernels, FluxHllc2D) { checkFluxFaces<2>(RiemannKind::Hllc, 61, false); }
TEST(Kernels, FluxHllc3D) { checkFluxFaces<3>(RiemannKind::Hllc, 67, false); }
TEST(Kernels, FluxRoe2D) { checkFluxFaces<2>(RiemannKind::Roe, 71, false); }
TEST(Kernels, FluxHllcBrokenStates) {
  checkFluxFaces<2>(RiemannKind::Hllc, 73, true);
}
TEST(Kernels, FluxRusanovBrokenStates) {
  checkFluxFaces<2>(RiemannKind::Rusanov, 79, true);
}

// -------------------------------------------------------------------------
// copy / zero / divergence accumulation.

template <unsigned Dim> void checkCopyZeroDiv(uint64_t Seed) {
  for (size_t N : kLengths) {
    auto Src = randomStates<Dim>(N, Seed, false);
    auto Lo = randomStates<Dim>(N, Seed + 1, false);
    auto Hi = randomStates<Dim>(N, Seed + 2, false);
    auto R0 = randomStates<Dim>(N, Seed + 3, false);
    const double InvDx = 123.5;

    std::vector<Cons<Dim>> Ref = R0;
    for (size_t I = 0; I < N; ++I)
      Ref[I] -= (Hi[I] - Lo[I]) * InvDx;

    for (bool Simd : {false, true}) {
      Buffers<Dim> Bs(Src), Bd{std::vector<Cons<Dim>>(N)};
      copyState<Dim>(ConstRun<Dim>(Bs.aos()), Bd.aos(), N, Simd);
      copyState<Dim>(ConstRun<Dim>(Bs.soa()), Bd.soa(), N, Simd);
      expectBitEqual(Bd, Bs, N, "copyState");
      expectSoaMatchesAos(Bd, N, "copyState");

      zeroState<Dim>(Bd.aos(), N, Simd);
      for (size_t I = 0; I < N; ++I)
        for (unsigned K = 0; K < NumVars<Dim>; ++K)
          ASSERT_EQ(Bd.Aos[I].comp(K), 0.0);

      Buffers<Dim> Br(R0), Bl(Lo), Bh(Hi);
      accumDivergence<Dim>(Br.aos(), ConstRun<Dim>(Bl.aos()),
                           ConstRun<Dim>(Bh.aos()), InvDx, N, Simd);
      accumDivergence<Dim>(Br.soa(), ConstRun<Dim>(Bl.soa()),
                           ConstRun<Dim>(Bh.soa()), InvDx, N, Simd);
      Buffers<Dim> Bref(Ref);
      expectBitEqual(Br, Bref, N, "accumDivergence");
      expectSoaMatchesAos(Br, N, "accumDivergence");
    }
  }
}

TEST(Kernels, CopyZeroDivergence1D) { checkCopyZeroDiv<1>(83); }
TEST(Kernels, CopyZeroDivergence2D) { checkCopyZeroDiv<2>(89); }
TEST(Kernels, CopyZeroDivergence3D) { checkCopyZeroDiv<3>(97); }

// Overlapping Lo/Hi views of one face line — the engines' usage.
TEST(Kernels, DivergenceOverlappingFaceLine) {
  constexpr unsigned Dim = 2;
  for (size_t N : kLengths) {
    auto Faces = randomStates<Dim>(N + 1, 101, false);
    auto R0 = randomStates<Dim>(N, 103, false);
    const double InvDx = 50.0;
    std::vector<Cons<Dim>> Ref = R0;
    for (size_t I = 0; I < N; ++I)
      Ref[I] -= (Faces[I + 1] - Faces[I]) * InvDx;

    for (bool Simd : {false, true}) {
      Buffers<Dim> Bf(Faces), Br(R0);
      ConstRun<Dim> LoA(Bf.aos());
      accumDivergence<Dim>(Br.aos(), LoA, advance(LoA, 1), InvDx, N, Simd);
      ConstRun<Dim> LoS(Bf.soa());
      accumDivergence<Dim>(Br.soa(), LoS, advance(LoS, 1), InvDx, N, Simd);
      Buffers<Dim> Bref(Ref);
      expectBitEqual(Br, Bref, N, "overlap divergence");
      expectSoaMatchesAos(Br, N, "overlap divergence");
    }
  }
}

TEST(Kernels, ReportsAcceleration) {
  // Informational: the CI log shows whether this build's SIMD TU really
  // got the host-ISA flags.
  SUCCEED() << "simdAccelerated() = " << simdAccelerated();
}

} // namespace
