//===- tests/FunctionRefTest.cpp - support/FunctionRef tests ---------------===//

#include "support/FunctionRef.h"

#include <gtest/gtest.h>

#include <string>

using namespace sacfd;

namespace {

int callThrough(FunctionRef<int(int)> Fn, int Arg) { return Fn(Arg); }

int freeFunctionDouble(int X) { return 2 * X; }

} // namespace

TEST(FunctionRef, CallsLambda) {
  int Result = callThrough([](int X) { return X + 1; }, 41);
  EXPECT_EQ(Result, 42);
}

TEST(FunctionRef, CapturingLambdaSeesItsState) {
  int Bias = 100;
  auto Fn = [&Bias](int X) { return X + Bias; };
  EXPECT_EQ(callThrough(Fn, 1), 101);
  Bias = 200;
  EXPECT_EQ(callThrough(Fn, 1), 201) << "reference, not a copy";
}

TEST(FunctionRef, WrapsFreeFunction) {
  EXPECT_EQ(callThrough(freeFunctionDouble, 21), 42);
}

TEST(FunctionRef, DefaultConstructedIsFalsy) {
  FunctionRef<void()> Empty;
  EXPECT_FALSE(static_cast<bool>(Empty));
  auto Callable = [] {};
  FunctionRef<void()> Bound = Callable;
  EXPECT_TRUE(static_cast<bool>(Bound));
}

TEST(FunctionRef, IsCheaplyCopyable) {
  int Count = 0;
  auto Fn = [&Count] { ++Count; };
  FunctionRef<void()> A = Fn;
  FunctionRef<void()> B = A;
  A();
  B();
  EXPECT_EQ(Count, 2);
}

TEST(FunctionRef, ForwardsReferencesAndReturnsValues) {
  auto Append = [](std::string &S, const std::string &Suffix) {
    S += Suffix;
    return S.size();
  };
  FunctionRef<size_t(std::string &, const std::string &)> Fn = Append;
  std::string S = "ab";
  EXPECT_EQ(Fn(S, "cd"), 4u);
  EXPECT_EQ(S, "abcd");
}

TEST(FunctionRef, MutableLambdaState) {
  int Calls = 0;
  auto Counter = [Calls]() mutable { return ++Calls; };
  FunctionRef<int()> Fn = Counter;
  EXPECT_EQ(Fn(), 1);
  EXPECT_EQ(Fn(), 2) << "mutates the referenced lambda object";
}
