//===- tests/AllocationTest.cpp - Zero-allocation hot path ----------------===//
//
// The pooled-buffer contract: after a short warmup, a steady-state step
// performs zero NDArray heap allocations — every stage temporary (flux
// faces, residuals, RK snapshots, materialized intermediates) comes out
// of the solver's FieldPool.  The counter lives in NDArray's allocator
// (array/AllocCounter.h), so any regression that sneaks a fresh field
// buffer onto the per-step path fails here, on both engines, in 1D and
// 2D, serial and spin-pool.
//
// Pooling must be a pure storage-provenance change: the same run with
// the pool disabled (one malloc per temporary) must produce bit-identical
// fields at every worker count.
//
//===----------------------------------------------------------------------===//

#include "array/AllocCounter.h"
#include "runtime/Runtime.h"
#include "runtime/SerialBackend.h"
#include "solver/ArraySolver.h"
#include "solver/Diagnostics.h"
#include "solver/FusedSolver.h"
#include "solver/Problems.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

using namespace sacfd;

namespace {

constexpr unsigned kWarmupSteps = 3;
constexpr unsigned kMeasuredSteps = 4;

/// Builds a fresh solver of the given engine over \p Prob on \p Exec.
template <unsigned Dim>
std::unique_ptr<EulerSolver<Dim>> makeSolver(const std::string &Engine,
                                             const Problem<Dim> &Prob,
                                             Backend &Exec,
                                             Layout L = Layout::AoS) {
  SchemeConfig Scheme = SchemeConfig::benchmarkScheme();
  if (Engine == "array")
    return std::make_unique<ArraySolver<Dim>>(Prob, Scheme, Exec,
                                              ArrayEvalMode::Fused, L);
  if (Engine == "array-mat")
    return std::make_unique<ArraySolver<Dim>>(
        Prob, Scheme, Exec, ArrayEvalMode::Materialized, L);
  return std::make_unique<FusedSolver<Dim>>(Prob, Scheme, Exec, L);
}

const char *kEngines[] = {"array", "array-mat", "fused"};

/// Warm up, then assert that further steps allocate nothing: the pool's
/// free lists (and the fused engine's per-thread flux scratch) are primed
/// after the first step, so the steady-state delta must be exactly zero.
template <unsigned Dim>
void expectZeroSteadyStateAllocs(const Problem<Dim> &Prob, Backend &Exec,
                                 const std::string &Label,
                                 Layout L = Layout::AoS) {
  for (const char *Engine : kEngines) {
    std::unique_ptr<EulerSolver<Dim>> S = makeSolver(Engine, Prob, Exec, L);
    S->advanceSteps(kWarmupSteps);
    uint64_t Before = alloctrack::allocationCount();
    S->advanceSteps(kMeasuredSteps);
    uint64_t Delta = alloctrack::allocationCount() - Before;
    EXPECT_EQ(Delta, 0u)
        << Engine << " on " << Label << ": " << Delta << " field-buffer "
        << "allocations across " << kMeasuredSteps << " steady-state steps";
  }
}

TEST(AllocationTest, SteadyStateStepsAllocateNothing1D) {
  Problem<1> Prob = sodProblem(64);
  SerialBackend Serial;
  expectZeroSteadyStateAllocs(Prob, Serial, "serial 1D");
  for (unsigned Workers : {2u, 4u}) {
    auto Exec = createBackend(BackendKind::SpinPool, Workers);
    ASSERT_NE(Exec, nullptr);
    expectZeroSteadyStateAllocs(Prob, *Exec,
                                "spin(" + std::to_string(Workers) + ") 1D");
  }
}

TEST(AllocationTest, SteadyStateStepsAllocateNothing2D) {
  Problem<2> Prob = shockInteraction2D(16);
  SerialBackend Serial;
  expectZeroSteadyStateAllocs(Prob, Serial, "serial 2D");
  for (unsigned Workers : {2u, 4u}) {
    auto Exec = createBackend(BackendKind::SpinPool, Workers);
    ASSERT_NE(Exec, nullptr);
    expectZeroSteadyStateAllocs(Prob, *Exec,
                                "spin(" + std::to_string(Workers) + ") 2D");
  }
}

TEST(AllocationTest, SteadyStateStepsAllocateNothingSoA) {
  // The SoA layout leases per-component plane buffers instead of record
  // arrays; the zero-allocation steady-state contract must hold there
  // unchanged (including the kernel path's per-thread SoA flux scratch).
  SerialBackend Serial;
  expectZeroSteadyStateAllocs(sodProblem(64), Serial, "serial 1D soa",
                              Layout::SoA);
  expectZeroSteadyStateAllocs(shockInteraction2D(16), Serial,
                              "serial 2D soa", Layout::SoA);
  auto Exec = createBackend(BackendKind::SpinPool, 4);
  ASSERT_NE(Exec, nullptr);
  expectZeroSteadyStateAllocs(shockInteraction2D(16), *Exec, "spin(4) 2D soa",
                              Layout::SoA);
}

TEST(AllocationTest, DisabledPoolAllocatesEveryStep) {
  // Sanity check on the harness itself: with pooling off the same steps
  // must show a nonzero allocation count, proving the counter sees the
  // per-temporary mallocs the pool removes.
  SerialBackend Exec;
  ArraySolver<1> S(sodProblem(64), SchemeConfig::benchmarkScheme(), Exec);
  S.fieldPool().setEnabled(false);
  S.advanceSteps(kWarmupSteps);
  uint64_t Before = alloctrack::allocationCount();
  S.advanceSteps(kMeasuredSteps);
  EXPECT_GT(alloctrack::allocationCount() - Before, 0u);
}

/// Pooled and unpooled runs of the same configuration must agree bit for
/// bit: the pool only changes where buffers come from, never their
/// contents or the order of arithmetic.
template <unsigned Dim>
void expectPoolingBitIdentity(const Problem<Dim> &Prob, unsigned Steps) {
  for (const char *Engine : kEngines)
    for (unsigned Workers : {1u, 2u, 4u}) {
      auto ExecA = createBackend(BackendKind::SpinPool, Workers);
      auto ExecB = createBackend(BackendKind::SpinPool, Workers);
      std::unique_ptr<EulerSolver<Dim>> Pooled =
          makeSolver(Engine, Prob, *ExecA);
      std::unique_ptr<EulerSolver<Dim>> Unpooled =
          makeSolver(Engine, Prob, *ExecB);
      Unpooled->fieldPool().setEnabled(false);
      Pooled->advanceSteps(Steps);
      Unpooled->advanceSteps(Steps);
      std::string Label = std::string(Engine) + " workers=" +
                          std::to_string(Workers);
      EXPECT_EQ(Pooled->time(), Unpooled->time()) << Label;
      EXPECT_EQ(maxFieldDifference(*Pooled, *Unpooled), 0.0) << Label;
    }
}

TEST(AllocationTest, PoolingIsBitIdentical1D) {
  expectPoolingBitIdentity(sodProblem(64), 8);
}

TEST(AllocationTest, PoolingIsBitIdentical2D) {
  expectPoolingBitIdentity(shockInteraction2D(16), 6);
}

TEST(AllocationTest, PoolStatsReflectSteadyStateReuse) {
  SerialBackend Exec;
  ArraySolver<2> S(shockInteraction2D(12), SchemeConfig::benchmarkScheme(),
                   Exec);
  S.advanceSteps(2);
  FieldPool::Stats Warm = S.fieldPool().stats();
  S.advanceSteps(4);
  FieldPool::Stats St = S.fieldPool().stats();
  EXPECT_GT(St.Acquisitions, Warm.Acquisitions);
  // Every steady-state acquisition is a free-list hit, and the footprint
  // stops growing after warmup.
  EXPECT_EQ(St.Acquisitions - Warm.Acquisitions, St.Hits - Warm.Hits);
  EXPECT_EQ(St.BytesResident, Warm.BytesResident);
  EXPECT_EQ(St.HighWaterBytes, Warm.HighWaterBytes);
  // The solution field U is itself a pooled lease held for the solver's
  // lifetime; every step-scoped temporary must have been returned.
  EXPECT_EQ(St.LiveLeases, 1u);
}

} // namespace
