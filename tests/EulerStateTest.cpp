//===- tests/EulerStateTest.cpp - Gas, State, Flux unit tests -------------===//

#include "euler/Flux.h"
#include "euler/Gas.h"
#include "euler/State.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace sacfd;

namespace {

/// Deterministic pseudo-random physical primitive states for property
/// sweeps.
template <unsigned Dim> Prim<Dim> randomPrim(unsigned &Seed) {
  auto Next = [&Seed] {
    Seed = Seed * 1664525u + 1013904223u;
    return static_cast<double>(Seed % 10000) / 10000.0;
  };
  Prim<Dim> W;
  W.Rho = 0.05 + 2.0 * Next();
  for (unsigned D = 0; D < Dim; ++D)
    W.Vel[D] = 4.0 * Next() - 2.0;
  W.P = 0.05 + 3.0 * Next();
  return W;
}

} // namespace

//===----------------------------------------------------------------------===//
// Gas / EOS
//===----------------------------------------------------------------------===//

TEST(Gas, DefaultsToAir) {
  Gas G;
  EXPECT_DOUBLE_EQ(G.Gamma, 1.4);
}

TEST(Gas, PressureEnergyRoundTrip) {
  Gas G;
  double P = 0.71, Kinetic = 0.33;
  double E = G.totalEnergy(P, Kinetic);
  EXPECT_NEAR(G.pressure(1.0, Kinetic, E), P, 1e-15);
}

TEST(Gas, SoundSpeedOfSodStates) {
  Gas G;
  // Sod top state (rho=1, p=1): c = sqrt(1.4).
  EXPECT_NEAR(G.soundSpeed(1.0, 1.0), std::sqrt(1.4), 1e-15);
  // Sod bottom state (rho=0.125, p=0.1): c = sqrt(1.4*0.8).
  EXPECT_NEAR(G.soundSpeed(0.125, 0.1), std::sqrt(1.4 * 0.1 / 0.125),
              1e-15);
}

TEST(Gas, EnthalpyIdentity) {
  // H = c^2/(gamma-1) + q^2/2 for any state.
  Gas G;
  Prim<2> W;
  W.Rho = 0.7;
  W.Vel = {1.2, -0.4};
  W.P = 0.9;
  double E = G.totalEnergy(W.P, W.kineticEnergyDensity());
  double H = G.totalEnthalpy(W.Rho, W.P, E);
  double C = G.soundSpeed(W.Rho, W.P);
  double Q2 = W.Vel[0] * W.Vel[0] + W.Vel[1] * W.Vel[1];
  EXPECT_NEAR(H, C * C / (G.Gamma - 1.0) + 0.5 * Q2, 1e-14);
}

//===----------------------------------------------------------------------===//
// Breakdown containment: the EOS helpers are total functions
//===----------------------------------------------------------------------===//

TEST(Gas, SoundSpeedContainsUnphysicalInputs) {
  Gas G;
  // Non-positive density: infinite signal speed, not NaN or an abort.
  EXPECT_TRUE(std::isinf(G.soundSpeed(0.0, 1.0)));
  EXPECT_TRUE(std::isinf(G.soundSpeed(-0.5, 1.0)));
  EXPECT_TRUE(std::isinf(
      G.soundSpeed(std::numeric_limits<double>::quiet_NaN(), 1.0)));
  // Negative pressure clamps to c = 0.
  EXPECT_EQ(G.soundSpeed(1.0, -0.3), 0.0);
  // Physical inputs are untouched by the containment path.
  EXPECT_EQ(G.soundSpeed(2.0, 0.8), std::sqrt(1.4 * 0.8 / 2.0));
}

TEST(Gas, PhysicalStatePredicate) {
  EXPECT_TRUE(Gas::physicalState(1.0, 0.5));
  EXPECT_TRUE(Gas::physicalState(1.0, 0.0)) << "vacuum pressure is legal";
  EXPECT_FALSE(Gas::physicalState(0.0, 0.5));
  EXPECT_FALSE(Gas::physicalState(-1.0, 0.5));
  EXPECT_FALSE(Gas::physicalState(1.0, -0.1));
  double Nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(Gas::physicalState(Nan, 0.5));
  EXPECT_FALSE(Gas::physicalState(1.0, Nan));
  double Inf = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(Gas::physicalState(Inf, 0.5));
}

TEST(State, ToPrimIsTotalOnUnphysicalStates) {
  // toPrim on rho <= 0 must produce observable non-finite components (for
  // the health scan) instead of aborting Debug builds.
  Gas G;
  Cons<1> Q;
  Q.Rho = 0.0;
  Q.Mom = {1.0};
  Q.E = 1.0;
  Prim<1> W = toPrim(Q, G);
  EXPECT_FALSE(std::isfinite(W.Vel[0]));
  EXPECT_FALSE(isPhysicalState(Q, G));

  Q.Rho = -1.0;
  W = toPrim(Q, G);
  EXPECT_EQ(W.Rho, -1.0);
  EXPECT_FALSE(isPhysicalState(Q, G));
}

TEST(State, IsPhysicalStateMatchesAdmissibleSet) {
  Gas G;
  Cons<1> Good = toCons(Prim<1>{1.0, {0.5}, 0.7}, G);
  EXPECT_TRUE(isPhysicalState(Good, G));

  Cons<1> NegativePressure = Good;
  NegativePressure.E = 0.0; // E below kinetic energy -> p < 0
  EXPECT_FALSE(isPhysicalState(NegativePressure, G));

  Cons<1> NanMomentum = Good;
  NanMomentum.Mom[0] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(isPhysicalState(NanMomentum, G));
}

TEST(Flux, TotalOnUnphysicalStates) {
  // The cons-form flux must not abort on a transiently unphysical state;
  // it propagates non-finite components for the scan to catch.
  Gas G;
  Cons<1> Q;
  Q.Rho = 0.0;
  Q.Mom = {1.0};
  Q.E = 1.0;
  Cons<1> F = physicalFlux(Q, G, 0);
  EXPECT_FALSE(std::isfinite(F.Mom[0]));
}

//===----------------------------------------------------------------------===//
// State conversions
//===----------------------------------------------------------------------===//

TEST(State, ConsPrimRoundTrip1D) {
  Gas G;
  unsigned Seed = 7;
  for (int Trial = 0; Trial < 200; ++Trial) {
    Prim<1> W = randomPrim<1>(Seed);
    Prim<1> Back = toPrim(toCons(W, G), G);
    EXPECT_NEAR(Back.Rho, W.Rho, 1e-13 * W.Rho);
    EXPECT_NEAR(Back.Vel[0], W.Vel[0], 1e-12);
    EXPECT_NEAR(Back.P, W.P, 1e-12);
  }
}

TEST(State, ConsPrimRoundTrip2D) {
  Gas G;
  unsigned Seed = 99;
  for (int Trial = 0; Trial < 200; ++Trial) {
    Prim<2> W = randomPrim<2>(Seed);
    Prim<2> Back = toPrim(toCons(W, G), G);
    EXPECT_NEAR(Back.Rho, W.Rho, 1e-13 * W.Rho);
    EXPECT_NEAR(Back.Vel[0], W.Vel[0], 1e-12);
    EXPECT_NEAR(Back.Vel[1], W.Vel[1], 1e-12);
    EXPECT_NEAR(Back.P, W.P, 1e-12);
  }
}

TEST(State, ComponentAccessorsMatchFields) {
  Cons<2> Q;
  Q.Rho = 1.0;
  Q.Mom = {2.0, 3.0};
  Q.E = 4.0;
  EXPECT_EQ(Q.comp(0), 1.0);
  EXPECT_EQ(Q.comp(1), 2.0);
  EXPECT_EQ(Q.comp(2), 3.0);
  EXPECT_EQ(Q.comp(3), 4.0);
  Q.setComp(2, -5.0);
  EXPECT_EQ(Q.Mom[1], -5.0);

  Prim<1> W;
  W.Rho = 9.0;
  W.Vel = {8.0};
  W.P = 7.0;
  EXPECT_EQ(W.comp(0), 9.0);
  EXPECT_EQ(W.comp(1), 8.0);
  EXPECT_EQ(W.comp(2), 7.0);
  W.setComp(1, 1.5);
  EXPECT_EQ(W.Vel[0], 1.5);
}

TEST(State, ConsVectorSpaceOperators) {
  Cons<2> A, B;
  A.Rho = 1;
  A.Mom = {2, 3};
  A.E = 4;
  B.Rho = 10;
  B.Mom = {20, 30};
  B.E = 40;

  Cons<2> Sum = A + B;
  EXPECT_EQ(Sum.Rho, 11.0);
  EXPECT_EQ(Sum.Mom[1], 33.0);
  Cons<2> Diff = B - A;
  EXPECT_EQ(Diff.E, 36.0);
  Cons<2> Scaled = A * 2.0;
  EXPECT_EQ(Scaled.Mom[0], 4.0);
  Cons<2> Scaled2 = 2.0 * A;
  EXPECT_TRUE(Scaled == Scaled2);
  Cons<2> Div = B / 10.0;
  EXPECT_NEAR(Div.Rho, 1.0, 1e-15);
  A += B;
  EXPECT_EQ(A.Rho, 11.0);
  A -= B;
  EXPECT_EQ(A.Rho, 1.0);
}

TEST(State, KineticEnergyDensity) {
  Prim<2> W;
  W.Rho = 2.0;
  W.Vel = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(W.kineticEnergyDensity(), 0.5 * 2.0 * 25.0);
}

TEST(State, MaxWaveSpeedMatchesPaperGetDT) {
  // EV = (|Ux|+C)/Dx + (|Uy|+C)/Dy built from per-axis maxWaveSpeed.
  Gas G;
  Prim<2> W;
  W.Rho = 1.0;
  W.Vel = {-2.0, 0.5};
  W.P = 1.0;
  double C = G.soundSpeed(1.0, 1.0);
  EXPECT_DOUBLE_EQ(maxWaveSpeed(W, G, 0), 2.0 + C);
  EXPECT_DOUBLE_EQ(maxWaveSpeed(W, G, 1), 0.5 + C);
}

//===----------------------------------------------------------------------===//
// Physical flux
//===----------------------------------------------------------------------===//

TEST(Flux, MatchesHandComputedValues1D) {
  Gas G;
  Prim<1> W;
  W.Rho = 2.0;
  W.Vel = {3.0};
  W.P = 5.0;
  Cons<1> Q = toCons(W, G);
  Cons<1> F = physicalFlux(Q, G, 0);
  // [rho u, rho u^2 + p, u (E + p)]
  EXPECT_NEAR(F.Rho, 6.0, 1e-13);
  EXPECT_NEAR(F.Mom[0], 2.0 * 9.0 + 5.0, 1e-13);
  double E = 5.0 / 0.4 + 0.5 * 2.0 * 9.0;
  EXPECT_NEAR(F.E, 3.0 * (E + 5.0), 1e-12);
}

TEST(Flux, PrimAndConsOverloadsAgree) {
  Gas G;
  unsigned Seed = 31;
  for (int Trial = 0; Trial < 100; ++Trial) {
    Prim<2> W = randomPrim<2>(Seed);
    Cons<2> Q = toCons(W, G);
    for (unsigned Axis = 0; Axis < 2; ++Axis) {
      Cons<2> Fq = physicalFlux(Q, G, Axis);
      Cons<2> Fw = physicalFlux(W, G, Axis);
      for (unsigned K = 0; K < 4; ++K)
        EXPECT_NEAR(Fq.comp(K), Fw.comp(K),
                    1e-12 * (1.0 + std::fabs(Fq.comp(K))));
    }
  }
}

TEST(Flux, StationaryGasFluxIsPurePressure) {
  Gas G;
  Prim<2> W;
  W.Rho = 1.3;
  W.Vel = {0.0, 0.0};
  W.P = 0.8;
  for (unsigned Axis = 0; Axis < 2; ++Axis) {
    Cons<2> F = physicalFlux(W, G, Axis);
    EXPECT_EQ(F.Rho, 0.0);
    EXPECT_EQ(F.E, 0.0);
    EXPECT_NEAR(F.Mom[Axis], 0.8, 1e-15);
    EXPECT_EQ(F.Mom[1 - Axis], 0.0);
  }
}

TEST(Flux, GalileanMassFluxShift) {
  // Mass flux along x equals rho * u exactly.
  Gas G;
  unsigned Seed = 77;
  for (int Trial = 0; Trial < 50; ++Trial) {
    Prim<2> W = randomPrim<2>(Seed);
    Cons<2> F = physicalFlux(W, G, 0);
    EXPECT_NEAR(F.Rho, W.Rho * W.Vel[0], 1e-13 * (1.0 + std::fabs(F.Rho)));
  }
}

TEST(Flux, AxisSymmetry2D) {
  // Swapping the two axes of the state must swap the two directional
  // fluxes (with momentum components swapped).
  Gas G;
  unsigned Seed = 123;
  for (int Trial = 0; Trial < 50; ++Trial) {
    Prim<2> W = randomPrim<2>(Seed);
    Prim<2> Swapped = W;
    std::swap(Swapped.Vel[0], Swapped.Vel[1]);

    Cons<2> Fx = physicalFlux(toCons(W, G), G, 0);
    Cons<2> Gy = physicalFlux(toCons(Swapped, G), G, 1);
    EXPECT_NEAR(Fx.Rho, Gy.Rho, 1e-12);
    EXPECT_NEAR(Fx.Mom[0], Gy.Mom[1], 1e-12);
    EXPECT_NEAR(Fx.Mom[1], Gy.Mom[0], 1e-12);
    EXPECT_NEAR(Fx.E, Gy.E, 1e-12);
  }
}
