//===- tests/DeterminismTest.cpp - Backend/worker determinism matrix ------===//
//
// The paper's central claim depends on the parallel schedules being pure
// reorderings of the same arithmetic: every backend at every worker count
// must produce bit-identical fields.  This matrix pins that down for both
// engines on 1D Sod and a small 2D shock interaction, across serial,
// fork-join, and spin-pool at 1, 2, 4, and 8 workers — and extends the
// bit-identity to the telemetry stream: counter totals and gauge series
// must match the serial reference exactly (span durations are wall-clock
// and excluded).
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"
#include "shard/ShardCoordinator.h"
#include "solver/ArraySolver.h"
#include "solver/Diagnostics.h"
#include "solver/FusedSolver.h"
#include "solver/Problems.h"
#include "solver/Scenario.h"
#include "solver/SolverFactory.h"
#include "telemetry/Telemetry.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

using namespace sacfd;

namespace {

constexpr unsigned kWorkerCounts[] = {1, 2, 4, 8};
constexpr BackendKind kParallelKinds[] = {BackendKind::ForkJoin,
                                          BackendKind::SpinPool,
                                          BackendKind::Tasks};

struct TelemetryDigest {
  std::vector<std::pair<std::string, uint64_t>> Counters;
  std::vector<telemetry::GaugeSeries> Gauges;
};

TelemetryDigest digest(const telemetry::MetricsReport &R) {
  TelemetryDigest D;
  for (const telemetry::CounterTotal &C : R.Counters)
    D.Counters.emplace_back(C.Name, C.Total);
  D.Gauges = R.Gauges;
  return D;
}

/// Bitwise double comparison: distinguishes 0.0 from -0.0 and treats any
/// NaN payload difference as a mismatch, which is the determinism
/// contract ("bit-identical", not "numerically close").
bool sameBits(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

void expectSameGauges(const TelemetryDigest &Ref, const TelemetryDigest &Got,
                      const std::string &Label) {
  ASSERT_EQ(Ref.Gauges.size(), Got.Gauges.size()) << Label;
  for (size_t I = 0; I < Ref.Gauges.size(); ++I) {
    const telemetry::GaugeSeries &RG = Ref.Gauges[I];
    const telemetry::GaugeSeries &GG = Got.Gauges[I];
    EXPECT_EQ(RG.Name, GG.Name) << Label;
    ASSERT_EQ(RG.Samples.size(), GG.Samples.size())
        << Label << " gauge " << RG.Name;
    for (size_t S = 0; S < RG.Samples.size(); ++S) {
      EXPECT_EQ(RG.Samples[S].Step, GG.Samples[S].Step)
          << Label << " gauge " << RG.Name;
      EXPECT_TRUE(sameBits(RG.Samples[S].Value, GG.Samples[S].Value))
          << Label << " gauge " << RG.Name << " sample " << S << ": "
          << RG.Samples[S].Value << " vs " << GG.Samples[S].Value;
    }
  }
}

void expectSameTelemetry(const TelemetryDigest &Ref,
                         const TelemetryDigest &Got,
                         const std::string &Label) {
  ASSERT_EQ(Ref.Counters.size(), Got.Counters.size()) << Label;
  for (size_t I = 0; I < Ref.Counters.size(); ++I) {
    EXPECT_EQ(Ref.Counters[I].first, Got.Counters[I].first) << Label;
    EXPECT_EQ(Ref.Counters[I].second, Got.Counters[I].second)
        << Label << " counter " << Ref.Counters[I].first;
  }
  expectSameGauges(Ref, Got, Label);
}

/// Runs \p Steps of a fresh solver on \p Exec with telemetry recording,
/// returning the telemetry digest.  The solver itself is returned through
/// \p Out so fields can be compared while both runs are alive.
template <typename SolverT, unsigned Dim>
TelemetryDigest runInstrumented(const Problem<Dim> &Prob,
                                const SchemeConfig &Scheme, Backend &Exec,
                                unsigned Steps,
                                std::unique_ptr<SolverT> &Out) {
  telemetry::reset();
  telemetry::setGaugeStride(1);
  telemetry::setEnabled(true);
  Out = std::make_unique<SolverT>(Prob, Scheme, Exec);
  Out->advanceSteps(Steps);
  TelemetryDigest D = digest(telemetry::snapshot());
  telemetry::setEnabled(false);
  return D;
}

template <typename SolverT, unsigned Dim>
void checkMatrix(const Problem<Dim> &Prob, const SchemeConfig &Scheme,
                 unsigned Steps, const Tile &TileCfg = Tile::off()) {
  // The reference stays untiled: tiled execution must be bit-identical
  // to the legacy row-flattened serial run, not merely self-consistent.
  auto RefExec = createBackend(BackendKind::Serial, 1);
  std::unique_ptr<SolverT> Ref;
  TelemetryDigest RefTelem =
      runInstrumented<SolverT>(Prob, Scheme, *RefExec, Steps, Ref);
  EXPECT_FALSE(RefTelem.Counters.empty());
  EXPECT_FALSE(RefTelem.Gauges.empty());

  for (BackendKind Kind : kParallelKinds)
    for (unsigned Workers : kWorkerCounts) {
      auto Exec =
          createBackend(Kind, Workers, Schedule::staticBlock(), TileCfg);
      ASSERT_NE(Exec, nullptr);
      std::string Label = std::string(Exec->name()) + "(" +
                          std::to_string(Workers) + ") tile=" +
                          TileCfg.str();
      std::unique_ptr<SolverT> S;
      TelemetryDigest Telem =
          runInstrumented<SolverT>(Prob, Scheme, *Exec, Steps, S);
      EXPECT_DOUBLE_EQ(Ref->time(), S->time()) << Label;
      EXPECT_EQ(maxFieldDifference(*Ref, *S), 0.0) << Label;
      expectSameTelemetry(RefTelem, Telem, Label);
    }
}

/// Like runInstrumented, but flips the fused engine into the dependency-
/// DAG step mode before advancing.
template <unsigned Dim>
TelemetryDigest runDagInstrumented(const Problem<Dim> &Prob,
                                   const SchemeConfig &Scheme, Backend &Exec,
                                   unsigned Steps,
                                   std::unique_ptr<FusedSolver<Dim>> &Out) {
  telemetry::reset();
  telemetry::setGaugeStride(1);
  telemetry::setEnabled(true);
  Out = std::make_unique<FusedSolver<Dim>>(Prob, Scheme, Exec);
  EXPECT_TRUE(Out->enableDagStepping());
  Out->advanceSteps(Steps);
  TelemetryDigest D = digest(telemetry::snapshot());
  telemetry::setEnabled(false);
  return D;
}

/// DAG step mode across worker counts: fields, time and every gauge
/// series must match the untiled serial loops reference bitwise (the
/// gauges cover dt, the GetDT max eigenvalue and the conserved totals, so
/// this pins the overlapped/cached reduction too).  Counters legitimately
/// differ from loops mode (the dag has its own region/task accounting),
/// so the full digest is instead required to be identical across worker
/// counts within the mode.
template <unsigned Dim>
void checkDagMatrix(const Problem<Dim> &Prob, const SchemeConfig &Scheme,
                    unsigned Steps, const Tile &TileCfg = Tile::off()) {
  auto RefExec = createBackend(BackendKind::Serial, 1);
  std::unique_ptr<FusedSolver<Dim>> Ref;
  TelemetryDigest RefTelem =
      runInstrumented<FusedSolver<Dim>>(Prob, Scheme, *RefExec, Steps, Ref);
  EXPECT_FALSE(RefTelem.Gauges.empty());

  std::optional<TelemetryDigest> OneWorker;
  for (unsigned Workers : kWorkerCounts) {
    auto Exec = createBackend(BackendKind::Tasks, Workers,
                              Schedule::staticBlock(), TileCfg);
    ASSERT_NE(Exec, nullptr);
    std::string Label = "tasks/dag(" + std::to_string(Workers) +
                        ") tile=" + TileCfg.str();
    std::unique_ptr<FusedSolver<Dim>> S;
    TelemetryDigest Telem =
        runDagInstrumented<Dim>(Prob, Scheme, *Exec, Steps, S);
    EXPECT_TRUE(S->dagStepping()) << Label;
    EXPECT_DOUBLE_EQ(Ref->time(), S->time()) << Label;
    EXPECT_EQ(maxFieldDifference(*Ref, *S), 0.0) << Label;
    expectSameGauges(RefTelem, Telem, Label);
    if (!OneWorker)
      OneWorker = std::move(Telem);
    else
      expectSameTelemetry(*OneWorker, Telem, Label + " vs tasks/dag(1)");
  }
}

/// Builds a solver with an explicit layout/SIMD selection, papering over
/// the engines' differing constructor shapes.
template <typename SolverT, unsigned Dim>
std::unique_ptr<SolverT> makeLayoutSolver(const Problem<Dim> &Prob,
                                          const SchemeConfig &Scheme,
                                          Backend &Exec, Layout L,
                                          bool Simd) {
  if constexpr (std::is_same_v<SolverT, ArraySolver<Dim>>)
    return std::make_unique<SolverT>(Prob, Scheme, Exec,
                                     ArrayEvalMode::Fused, L, Simd);
  else
    return std::make_unique<SolverT>(Prob, Scheme, Exec, L, Simd);
}

/// Physics gauges only (step.dt, step.max_eigen, conserved totals):
/// pool.* telemetry legitimately differs across layouts (different lease
/// shapes and byte counts), but the physics stream may not.
TelemetryDigest stepGaugesOnly(const TelemetryDigest &D) {
  TelemetryDigest Out;
  for (const telemetry::GaugeSeries &G : D.Gauges)
    if (G.Name.rfind("step.", 0) == 0)
      Out.Gauges.push_back(G);
  return Out;
}

/// The layout/SIMD bit-identity matrix: every (layout, kernel build)
/// combination, on every backend at every worker count, must reproduce
/// the serial AoS *scalar* reference bitwise.  This is the tentpole
/// determinism contract: vectorization and the SoA layout are pure
/// reorganizations of the same arithmetic.
template <typename SolverT, unsigned Dim>
void checkLayoutSimdMatrix(const Problem<Dim> &Prob,
                           const SchemeConfig &Scheme, unsigned Steps,
                           const Tile &TileCfg = Tile::off()) {
  auto RefExec = createBackend(BackendKind::Serial, 1);
  telemetry::reset();
  telemetry::setGaugeStride(1);
  telemetry::setEnabled(true);
  std::unique_ptr<SolverT> Ref =
      makeLayoutSolver<SolverT>(Prob, Scheme, *RefExec, Layout::AoS, false);
  Ref->advanceSteps(Steps);
  TelemetryDigest RefTelem = stepGaugesOnly(digest(telemetry::snapshot()));
  telemetry::setEnabled(false);
  EXPECT_FALSE(RefTelem.Gauges.empty());

  // Self-comparison can't tell a working engine from a uniformly broken
  // one (a frozen or NaN-poisoned field is "bit-identical" to itself, and
  // maxFieldDifference collapses NaN comparisons to zero).  Require the
  // reference to have moved off the initial condition before trusting
  // the matrix.
  std::unique_ptr<SolverT> Init =
      makeLayoutSolver<SolverT>(Prob, Scheme, *RefExec, Layout::AoS, false);
  EXPECT_GT(maxFieldDifference(*Init, *Ref), 0.0)
      << "scalar AoS reference did not evolve";

  struct Combo {
    Layout L;
    bool Simd;
  };
  constexpr Combo kCombos[] = {
      {Layout::AoS, true}, {Layout::SoA, false}, {Layout::SoA, true}};
  for (Combo C : kCombos) {
    std::vector<std::pair<BackendKind, unsigned>> Arms = {
        {BackendKind::Serial, 1}};
    for (BackendKind Kind : kParallelKinds)
      for (unsigned Workers : kWorkerCounts)
        Arms.emplace_back(Kind, Workers);
    for (auto [Kind, Workers] : Arms) {
      auto Exec =
          createBackend(Kind, Workers, Schedule::staticBlock(), TileCfg);
      ASSERT_NE(Exec, nullptr);
      std::string Label = std::string(Exec->name()) + "(" +
                          std::to_string(Workers) + ") layout=" +
                          layoutName(C.L) + (C.Simd ? " simd" : " scalar") +
                          " tile=" + TileCfg.str();
      telemetry::reset();
      telemetry::setGaugeStride(1);
      telemetry::setEnabled(true);
      std::unique_ptr<SolverT> S =
          makeLayoutSolver<SolverT>(Prob, Scheme, *Exec, C.L, C.Simd);
      S->advanceSteps(Steps);
      TelemetryDigest Telem = stepGaugesOnly(digest(telemetry::snapshot()));
      telemetry::setEnabled(false);
      EXPECT_EQ(S->fieldLayout(), C.L) << Label;
      EXPECT_EQ(S->simdEnabled(), C.Simd) << Label;
      EXPECT_DOUBLE_EQ(Ref->time(), S->time()) << Label;
      EXPECT_EQ(maxFieldDifference(*Ref, *S), 0.0) << Label;
      expectSameGauges(RefTelem, Telem, Label);
    }
  }
}

/// Layout/SIMD bit-identity under the DAG step mode, vs the serial
/// scalar AoS loops reference.
template <unsigned Dim>
void checkDagLayoutSimdMatrix(const Problem<Dim> &Prob,
                              const SchemeConfig &Scheme, unsigned Steps,
                              const Tile &TileCfg = Tile::off()) {
  auto RefExec = createBackend(BackendKind::Serial, 1);
  std::unique_ptr<FusedSolver<Dim>> Ref = makeLayoutSolver<FusedSolver<Dim>>(
      Prob, Scheme, *RefExec, Layout::AoS, false);
  Ref->advanceSteps(Steps);

  // Same evolved-reference guard as the loop-mode matrix: a frozen or
  // NaN-poisoned engine would pass pure self-comparison.
  std::unique_ptr<FusedSolver<Dim>> Init = makeLayoutSolver<FusedSolver<Dim>>(
      Prob, Scheme, *RefExec, Layout::AoS, false);
  EXPECT_GT(maxFieldDifference(*Init, *Ref), 0.0)
      << "scalar AoS reference did not evolve";

  struct Combo {
    Layout L;
    bool Simd;
  };
  constexpr Combo kCombos[] = {
      {Layout::AoS, true}, {Layout::SoA, false}, {Layout::SoA, true}};
  for (Combo C : kCombos)
    for (unsigned Workers : kWorkerCounts) {
      auto Exec = createBackend(BackendKind::Tasks, Workers,
                                Schedule::staticBlock(), TileCfg);
      ASSERT_NE(Exec, nullptr);
      std::string Label = "tasks/dag(" + std::to_string(Workers) +
                          ") layout=" + layoutName(C.L) +
                          (C.Simd ? " simd" : " scalar");
      auto S = makeLayoutSolver<FusedSolver<Dim>>(Prob, Scheme, *Exec, C.L,
                                                  C.Simd);
      EXPECT_TRUE(S->enableDagStepping()) << Label;
      S->advanceSteps(Steps);
      EXPECT_DOUBLE_EQ(Ref->time(), S->time()) << Label;
      EXPECT_EQ(maxFieldDifference(*Ref, *S), 0.0) << Label;
    }
}

class DeterminismTest : public ::testing::Test {
protected:
  void TearDown() override {
    telemetry::setEnabled(false);
    telemetry::reset();
  }
};

} // namespace

TEST_F(DeterminismTest, Sod1DArraySolver) {
  checkMatrix<ArraySolver<1>>(sodProblem(128),
                              SchemeConfig::benchmarkScheme(), 20);
}

TEST_F(DeterminismTest, Sod1DFusedSolver) {
  checkMatrix<FusedSolver<1>>(sodProblem(128),
                              SchemeConfig::benchmarkScheme(), 20);
}

TEST_F(DeterminismTest, Interaction2DArraySolver) {
  checkMatrix<ArraySolver<2>>(shockInteraction2D(24, 2.2, 12.0),
                              SchemeConfig::benchmarkScheme(), 6);
}

TEST_F(DeterminismTest, Interaction2DFusedSolver) {
  checkMatrix<FusedSolver<2>>(shockInteraction2D(24, 2.2, 12.0),
                              SchemeConfig::benchmarkScheme(), 6);
}

TEST_F(DeterminismTest, FigureSchemeInteraction2DArraySolver) {
  // Second-order reconstruction exercises the wider stencils and the
  // limiter; the determinism contract must hold there too.
  checkMatrix<ArraySolver<2>>(shockInteraction2D(20, 2.2, 10.0),
                              SchemeConfig::figureScheme(), 5);
}

TEST_F(DeterminismTest, TiledInteraction2DArraySolver) {
  // Tiled parallel execution vs the untiled serial reference: the 2D
  // runtime must be a pure reordering of the same arithmetic.
  checkMatrix<ArraySolver<2>>(shockInteraction2D(24, 2.2, 12.0),
                              SchemeConfig::benchmarkScheme(), 6,
                              Tile::sized(5, 7));
}

TEST_F(DeterminismTest, TiledInteraction2DFusedSolver) {
  checkMatrix<FusedSolver<2>>(shockInteraction2D(24, 2.2, 12.0),
                              SchemeConfig::benchmarkScheme(), 6,
                              Tile::sized(5, 7));
}

TEST_F(DeterminismTest, DagSod1DFusedSolver) {
  checkDagMatrix<1>(sodProblem(128), SchemeConfig::benchmarkScheme(), 20);
}

TEST_F(DeterminismTest, DagInteraction2DFusedSolver) {
  checkDagMatrix<2>(shockInteraction2D(24, 2.2, 12.0),
                    SchemeConfig::benchmarkScheme(), 6);
}

TEST_F(DeterminismTest, DagFigureSchemeInteraction2DFusedSolver) {
  // Wider stencils + limiter under the DAG pipeline: the stencil-reach
  // dependency edges must cover the second-order reconstruction too.
  checkDagMatrix<2>(shockInteraction2D(20, 2.2, 10.0),
                    SchemeConfig::figureScheme(), 5);
}

TEST_F(DeterminismTest, DagTiledInteraction2DFusedSolver) {
  // Odd tile sizes put tile seams inside the stencil reach in both axes;
  // steal order then genuinely interleaves cross-tile chains.
  checkDagMatrix<2>(shockInteraction2D(24, 2.2, 12.0),
                    SchemeConfig::benchmarkScheme(), 6, Tile::sized(5, 7));
}

namespace {

/// Sedov wants the blast CFL the gallery recommends; a handful of steps
/// keeps the strong point blast finite on the coarse matrix grid.
SchemeConfig sedovScheme() {
  SchemeConfig C = SchemeConfig::figureScheme();
  C.Cfl = 0.3;
  return C;
}

} // namespace

TEST_F(DeterminismTest, Sedov2DArraySolver) {
  // The gallery's strong point blast: near-vacuum ambient state and a
  // steep pressure spike stress the positivity path of every backend.
  checkMatrix<ArraySolver<2>>(sedovBlast2D(24), sedovScheme(), 5);
}

TEST_F(DeterminismTest, Sedov2DFusedSolver) {
  checkMatrix<FusedSolver<2>>(sedovBlast2D(24), sedovScheme(), 5);
}

TEST_F(DeterminismTest, TiledSedov2DFusedSolver) {
  checkMatrix<FusedSolver<2>>(sedovBlast2D(24), sedovScheme(), 5,
                              Tile::sized(5, 7));
}

TEST_F(DeterminismTest, DagSedov2DFusedSolver) {
  checkDagMatrix<2>(sedovBlast2D(24), sedovScheme(), 5);
}

TEST_F(DeterminismTest, Riemann2DConfig3ArraySolver) {
  // Four-quadrant Riemann problem: contacts and shocks meet at the
  // center, so every quadrant seam crosses worker partitions.
  checkMatrix<ArraySolver<2>>(riemann2D(24, 2, 3),
                              SchemeConfig::figureScheme(), 5);
}

TEST_F(DeterminismTest, Riemann2DConfig3FusedSolver) {
  checkMatrix<FusedSolver<2>>(riemann2D(24, 2, 3),
                              SchemeConfig::figureScheme(), 5);
}

TEST_F(DeterminismTest, TiledRiemann2DConfig3ArraySolver) {
  checkMatrix<ArraySolver<2>>(riemann2D(24, 2, 3),
                              SchemeConfig::figureScheme(), 5,
                              Tile::sized(5, 7));
}

TEST_F(DeterminismTest, DagRiemann2DConfig3FusedSolver) {
  checkDagMatrix<2>(riemann2D(24, 2, 3), SchemeConfig::figureScheme(), 5);
}

TEST_F(DeterminismTest, LayoutSimdSod1DArraySolver) {
  // Odd cell count: the vectorized kernels run a ragged tail every line.
  checkLayoutSimdMatrix<ArraySolver<1>>(sodProblem(67),
                                        SchemeConfig::benchmarkScheme(), 12);
}

TEST_F(DeterminismTest, LayoutSimdSod1DFusedSolver) {
  checkLayoutSimdMatrix<FusedSolver<1>>(sodProblem(67),
                                        SchemeConfig::benchmarkScheme(), 12);
}

TEST_F(DeterminismTest, LayoutSimdTinySod1DArraySolver) {
  // Nx below the vector width: every kernel call is pure tail.
  checkLayoutSimdMatrix<ArraySolver<1>>(sodProblem(5),
                                        SchemeConfig::benchmarkScheme(), 6);
}

TEST_F(DeterminismTest, LayoutSimdTinySod1DFusedSolver) {
  checkLayoutSimdMatrix<FusedSolver<1>>(sodProblem(5),
                                        SchemeConfig::benchmarkScheme(), 6);
}

TEST_F(DeterminismTest, LayoutSimdInteraction2DArraySolver) {
  // Odd Nx: ragged rows in both the axis-1 line runs and the axis-0
  // transposed row runs.
  checkLayoutSimdMatrix<ArraySolver<2>>(shockInteraction2D(19, 2.2, 9.5),
                                        SchemeConfig::benchmarkScheme(), 4);
}

TEST_F(DeterminismTest, LayoutSimdInteraction2DFusedSolver) {
  checkLayoutSimdMatrix<FusedSolver<2>>(shockInteraction2D(19, 2.2, 9.5),
                                        SchemeConfig::benchmarkScheme(), 4);
}

TEST_F(DeterminismTest, LayoutSimdFigureSchemeInteraction2DArraySolver) {
  // WENO3 keeps the flux on the stencil-gather path; the SSP update,
  // GetDT and layout accessors still route through the kernels.
  checkLayoutSimdMatrix<ArraySolver<2>>(shockInteraction2D(20, 2.2, 10.0),
                                        SchemeConfig::figureScheme(), 4);
}

TEST_F(DeterminismTest, LayoutSimdTiledInteraction2DArraySolver) {
  // Odd tiles put kernel-run seams mid-row: sub-range faces are
  // recomputed, never communicated, so seams cannot shift bits.
  checkLayoutSimdMatrix<ArraySolver<2>>(shockInteraction2D(19, 2.2, 9.5),
                                        SchemeConfig::benchmarkScheme(), 4,
                                        Tile::sized(5, 7));
}

TEST_F(DeterminismTest, LayoutSimdTiledInteraction2DFusedSolver) {
  checkLayoutSimdMatrix<FusedSolver<2>>(shockInteraction2D(19, 2.2, 9.5),
                                        SchemeConfig::benchmarkScheme(), 4,
                                        Tile::sized(5, 7));
}

TEST_F(DeterminismTest, LayoutSimdDagSod1DFusedSolver) {
  checkDagLayoutSimdMatrix<1>(sodProblem(67),
                              SchemeConfig::benchmarkScheme(), 12);
}

TEST_F(DeterminismTest, LayoutSimdDagInteraction2DFusedSolver) {
  checkDagLayoutSimdMatrix<2>(shockInteraction2D(19, 2.2, 9.5),
                              SchemeConfig::benchmarkScheme(), 4);
}

TEST_F(DeterminismTest, TiledDynamicDealingInteraction2DArraySolver) {
  // Dynamic tile dealing changes which worker runs which tile run to
  // run; per-tile reduction partials merged in tile order must make the
  // result identical anyway.
  Tile T = Tile::sized(4, 8);
  T.Dealing = Schedule::dynamic(1);
  checkMatrix<ArraySolver<2>>(shockInteraction2D(20, 2.2, 10.0),
                              SchemeConfig::figureScheme(), 5, T);
}

TEST_F(DeterminismTest, ShardedInteraction2D) {
  // Multi-process row-block decomposition extends the reordering
  // argument across address spaces: the max-eigenvalue dt reduction is
  // grouping-invariant and halo fills reproduce the interior stencil
  // inputs bitwise, so every shard count must hash identically to the
  // single-process run.
  Problem<2> Prob = shockInteraction2D(24, 2.2, 12.0);
  SchemeConfig Scheme = SchemeConfig::benchmarkScheme();
  constexpr unsigned Steps = 6;

  RunConfig Ref;
  Ref.Scheme = Scheme;
  Ref.Engine = EngineKind::Fused;
  Ref.Backend = BackendKind::Serial;
  Ref.Threads = 1;
  SolverRun<2> Serial(Prob, Ref);
  Serial.solver().advanceSteps(Steps);
  const uint64_t RefHash = fieldStateHash(Serial.solver());

  for (unsigned Shards : {1u, 2u, 4u}) {
    SCOPED_TRACE("shards=" + std::to_string(Shards));
    ShardOptions Opt;
    Opt.Shards = Shards;
    Opt.Scheme = Scheme;
    ShardCoordinator Coord(Prob, Opt);
    ASSERT_TRUE(Coord.start());
    ASSERT_TRUE(Coord.advanceSteps(Steps));
    EXPECT_EQ(Coord.stepCount(), Serial.solver().stepCount());
    EXPECT_EQ(Coord.stateHash(), RefHash);
    Coord.shutdown();
  }
}
