//===- tests/BackendTest.cpp - Parallel backend conformance tests ---------===//
//
// Every Backend implementation must satisfy the same contract; this suite
// is parameterized over (kind, thread count, schedule) and checks the
// contract properties: exact coverage, blocking completion, nested-region
// serialization, and worker accounting.
//
//===----------------------------------------------------------------------===//

#include "runtime/BlockReduce.h"
#include "runtime/ForkJoinBackend.h"
#include "runtime/OmpBackend.h"
#include "runtime/ParallelRegion.h"
#include "runtime/Runtime.h"
#include "runtime/SerialBackend.h"
#include "runtime/SpinBarrierPool.h"
#include "runtime/TaskBackend.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

using namespace sacfd;

namespace {

struct BackendCase {
  BackendKind Kind;
  unsigned Threads;
  Schedule Sched;

  std::string label() const {
    std::string S = backendKindName(Kind);
    S += "_t" + std::to_string(Threads) + "_" + Sched.str();
    for (char &C : S)
      if (C == '-' || C == ',')
        C = '_';
    return S;
  }
};

class BackendContractTest : public ::testing::TestWithParam<BackendCase> {
protected:
  std::unique_ptr<Backend> makeBackend() const {
    const BackendCase &C = GetParam();
    return createBackend(C.Kind, C.Threads, C.Sched);
  }
};

} // namespace

TEST_P(BackendContractTest, ReportsRequestedWorkerCount) {
  auto B = makeBackend();
  if (GetParam().Kind == BackendKind::Serial)
    EXPECT_EQ(B->workerCount(), 1u);
  else
    EXPECT_EQ(B->workerCount(), GetParam().Threads);
}

TEST_P(BackendContractTest, EachIterationRunsExactlyOnce) {
  auto B = makeBackend();
  constexpr size_t N = 10007; // prime: exercises uneven partitions
  std::vector<std::atomic<int>> Hits(N);
  for (auto &H : Hits)
    H.store(0);

  B->parallelFor(0, N, [&Hits](size_t Begin, size_t End) {
    for (size_t I = Begin; I < End; ++I)
      Hits[I].fetch_add(1, std::memory_order_relaxed);
  });

  for (size_t I = 0; I < N; ++I)
    ASSERT_EQ(Hits[I].load(), 1) << "iteration " << I;
}

TEST_P(BackendContractTest, HonorsNonZeroRangeBase) {
  auto B = makeBackend();
  constexpr size_t Lo = 100, Hi = 357;
  std::vector<std::atomic<int>> Hits(Hi);
  for (auto &H : Hits)
    H.store(0);

  B->parallelFor(Lo, Hi, [&Hits](size_t Begin, size_t End) {
    for (size_t I = Begin; I < End; ++I)
      Hits[I].fetch_add(1, std::memory_order_relaxed);
  });

  for (size_t I = 0; I < Hi; ++I)
    ASSERT_EQ(Hits[I].load(), I >= Lo ? 1 : 0) << "iteration " << I;
}

TEST_P(BackendContractTest, EmptyRangeIsANoOp) {
  auto B = makeBackend();
  bool Ran = false;
  B->parallelFor(5, 5, [&Ran](size_t, size_t) { Ran = true; });
  B->parallelFor(7, 3, [&Ran](size_t, size_t) { Ran = true; });
  EXPECT_FALSE(Ran);
}

TEST_P(BackendContractTest, CallIsBlockingAndResultsVisible) {
  auto B = makeBackend();
  constexpr size_t N = 4096;
  std::vector<double> Out(N, 0.0);
  B->parallelFor(0, N, [&Out](size_t Begin, size_t End) {
    for (size_t I = Begin; I < End; ++I)
      Out[I] = static_cast<double>(I) * 2.0;
  });
  // No synchronization here on purpose: parallelFor must have established
  // the happens-before edge itself.
  for (size_t I = 0; I < N; ++I)
    ASSERT_EQ(Out[I], static_cast<double>(I) * 2.0);
}

TEST_P(BackendContractTest, NestedCallsRunInlineWithoutDeadlock) {
  auto B = makeBackend();
  constexpr size_t N = 64;
  std::vector<std::atomic<int>> Inner(N);
  for (auto &H : Inner)
    H.store(0);

  B->parallelFor(0, 8, [&](size_t Begin, size_t End) {
    for (size_t I = Begin; I < End; ++I) {
      EXPECT_TRUE(inParallelRegion());
      // A nested region must execute inline on this worker.
      B->parallelFor(I * 8, (I + 1) * 8, [&Inner](size_t B2, size_t E2) {
        for (size_t J = B2; J < E2; ++J)
          Inner[J].fetch_add(1, std::memory_order_relaxed);
      });
    }
  });

  for (size_t I = 0; I < N; ++I)
    ASSERT_EQ(Inner[I].load(), 1) << "iteration " << I;
}

TEST_P(BackendContractTest, ManyBackToBackDispatches) {
  // The Euler time step issues dozens of regions back to back; stress the
  // dispatch/barrier path with many small regions and verify a running
  // checksum that would detect lost or duplicated work.
  auto B = makeBackend();
  constexpr size_t Rounds = 300;
  constexpr size_t N = 97;
  std::vector<long> Data(N, 0);
  for (size_t R = 0; R < Rounds; ++R)
    B->parallelFor(0, N, [&Data](size_t Begin, size_t End) {
      for (size_t I = Begin; I < End; ++I)
        Data[I] += static_cast<long>(I) + 1;
    });
  for (size_t I = 0; I < N; ++I)
    ASSERT_EQ(Data[I], static_cast<long>(Rounds) * (static_cast<long>(I) + 1));
}

TEST_P(BackendContractTest, CountsTopLevelRegionsOnly) {
  auto B = makeBackend();
  EXPECT_EQ(B->regionsDispatched(), 0u);
  B->parallelFor(0, 10, [](size_t, size_t) {});
  B->parallelFor(0, 10, [](size_t, size_t) {});
  B->parallelFor(3, 3, [](size_t, size_t) {}); // empty: not a region
  EXPECT_EQ(B->regionsDispatched(), 2u);

  // Nested calls run inline and are not counted.
  B->parallelFor(0, 4, [&B](size_t Begin, size_t End) {
    for (size_t I = Begin; I < End; ++I)
      B->parallelFor(0, 2, [](size_t, size_t) {});
  });
  EXPECT_EQ(B->regionsDispatched(), 3u);
}

TEST_P(BackendContractTest, SingleIterationRange) {
  auto B = makeBackend();
  int Count = 0;
  B->parallelFor(41, 42, [&Count](size_t Begin, size_t End) {
    EXPECT_EQ(Begin, 41u);
    EXPECT_EQ(End, 42u);
    ++Count;
  });
  EXPECT_EQ(Count, 1);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendContractTest,
    ::testing::Values(
        BackendCase{BackendKind::Serial, 1, Schedule::staticBlock()},
        BackendCase{BackendKind::SpinPool, 1, Schedule::staticBlock()},
        BackendCase{BackendKind::SpinPool, 2, Schedule::staticBlock()},
        BackendCase{BackendKind::SpinPool, 4, Schedule::staticBlock()},
        BackendCase{BackendKind::SpinPool, 8, Schedule::staticBlock()},
        BackendCase{BackendKind::ForkJoin, 1, Schedule::staticBlock()},
        BackendCase{BackendKind::ForkJoin, 2, Schedule::staticBlock()},
        BackendCase{BackendKind::ForkJoin, 4, Schedule::staticBlock()},
        BackendCase{BackendKind::ForkJoin, 4, Schedule::staticChunk(5)},
        BackendCase{BackendKind::ForkJoin, 4, Schedule::dynamic()},
        BackendCase{BackendKind::ForkJoin, 4, Schedule::dynamic(3)},
        BackendCase{BackendKind::ForkJoin, 8, Schedule::dynamic()},
        BackendCase{BackendKind::Tasks, 1, Schedule::staticBlock()},
        BackendCase{BackendKind::Tasks, 2, Schedule::staticBlock()},
        BackendCase{BackendKind::Tasks, 4, Schedule::staticBlock()},
        BackendCase{BackendKind::Tasks, 4, Schedule::staticChunk(5)},
        BackendCase{BackendKind::Tasks, 8, Schedule::staticBlock()}),
    [](const ::testing::TestParamInfo<BackendCase> &Info) {
      return Info.param.label();
    });

//===----------------------------------------------------------------------===//
// blockReduce: deterministic block reduction on top of parallelFor
//===----------------------------------------------------------------------===//

TEST_P(BackendContractTest, BlockReduceSumsExactly) {
  auto B = makeBackend();
  constexpr size_t N = 10007;
  long Sum = blockReduce(
      N, *B, 0L,
      [](size_t Lo, size_t Hi) {
        long S = 0;
        for (size_t I = Lo; I < Hi; ++I)
          S += static_cast<long>(I);
        return S;
      },
      [](long A, long Bv) { return A + Bv; });
  EXPECT_EQ(Sum, static_cast<long>(N) * (static_cast<long>(N) - 1) / 2);
}

TEST_P(BackendContractTest, BlockReduceEmptyRangeReturnsIdentity) {
  auto B = makeBackend();
  int R = blockReduce(
      0, *B, 42, [](size_t, size_t) { return 0; },
      [](int, int) { return 0; });
  EXPECT_EQ(R, 42);
}

TEST_P(BackendContractTest, BlockReduceMergesInBlockOrder) {
  // A non-commutative merge (string concatenation of block sub-ranges)
  // exposes the merge order: it must be ascending block order, identical
  // across repeated runs — the determinism the health scan relies on.
  auto B = makeBackend();
  auto Run = [&B]() {
    return blockReduce(
        100, *B, std::string(),
        [](size_t Lo, size_t Hi) {
          return "[" + std::to_string(Lo) + "," + std::to_string(Hi) + ")";
        },
        [](std::string A, std::string Bv) { return A + Bv; });
  };
  std::string First = Run();
  EXPECT_EQ(First.find("[0,"), 0u) << "block 0 must come first: " << First;
  for (int I = 0; I < 5; ++I)
    EXPECT_EQ(Run(), First);
}

TEST_P(BackendContractTest, BlockReduceFewerItemsThanWorkers) {
  auto B = makeBackend();
  long Sum = blockReduce(
      3, *B, 0L,
      [](size_t Lo, size_t Hi) {
        long S = 0;
        for (size_t I = Lo; I < Hi; ++I)
          S += static_cast<long>(I) + 1;
        return S;
      },
      [](long A, long Bv) { return A + Bv; });
  EXPECT_EQ(Sum, 6L);
}

//===----------------------------------------------------------------------===//
// Backend-specific behavior
//===----------------------------------------------------------------------===//

TEST(SpinBarrierPool, ReusesWorkersAcrossDispatches) {
  SpinBarrierPool Pool(4);
  std::set<std::thread::id> Round1, Round2;
  std::mutex M;
  auto Collect = [&M](std::set<std::thread::id> &Set) {
    return [&Set, &M](size_t, size_t) {
      std::lock_guard<std::mutex> Lock(M);
      Set.insert(std::this_thread::get_id());
    };
  };
  // One iteration per worker so every worker participates.
  Pool.parallelFor(0, 4, Collect(Round1));
  Pool.parallelFor(0, 4, Collect(Round2));
  EXPECT_EQ(Round1, Round2) << "persistent pool must reuse its threads";
  EXPECT_EQ(Round1.size(), 4u);
}

TEST(SpinBarrierPool, AdaptsSpinLimitToOversubscription) {
  unsigned Hw = std::thread::hardware_concurrency();
  if (Hw == 0)
    GTEST_SKIP() << "hardware concurrency unknown";
  // A pool larger than the hardware thread count must fall back to the
  // cooperative (yield-immediately) mode under the default limit.
  SpinBarrierPool Oversubscribed(Hw + 2);
  EXPECT_EQ(Oversubscribed.spinLimit(), 0u);
  // An explicit limit is always honored.
  SpinBarrierPool Forced(Hw + 2, 128);
  EXPECT_EQ(Forced.spinLimit(), 128u);
}

TEST(SpinBarrierPool, ZeroSpinLimitStillCompletes) {
  // Fully cooperative mode (yield immediately) must stay correct.
  SpinBarrierPool Pool(4, /*SpinLimit=*/0);
  std::atomic<long> Sum(0);
  Pool.parallelFor(0, 1000, [&Sum](size_t Begin, size_t End) {
    long Local = 0;
    for (size_t I = Begin; I < End; ++I)
      Local += static_cast<long>(I);
    Sum.fetch_add(Local);
  });
  EXPECT_EQ(Sum.load(), 999L * 1000L / 2L);
}

TEST(ForkJoinBackend, UsesFreshThreadsPerDispatch) {
  ForkJoinBackend B(3);
  std::set<std::thread::id> Seen;
  std::mutex M;
  std::thread::id Main = std::this_thread::get_id();
  for (int Round = 0; Round < 3; ++Round)
    B.parallelFor(0, 3, [&](size_t, size_t) {
      std::lock_guard<std::mutex> Lock(M);
      Seen.insert(std::this_thread::get_id());
    });
  // 3 rounds x 2 spawned threads + the master: at least 4 distinct ids
  // (thread ids may be recycled by the OS, so only a weak lower bound).
  EXPECT_GE(Seen.size(), 3u);
  EXPECT_TRUE(Seen.count(Main)) << "master must take part in the team";
}

TEST(TaskBackend, ReusesWorkersAcrossDispatches) {
  TaskBackend Pool(4);
  std::set<std::thread::id> Round1, Round2;
  std::mutex M;
  auto Collect = [&M](std::set<std::thread::id> &Set) {
    return [&Set, &M](size_t, size_t) {
      std::lock_guard<std::mutex> Lock(M);
      Set.insert(std::this_thread::get_id());
    };
  };
  Pool.parallelFor(0, 4096, Collect(Round1));
  Pool.parallelFor(0, 4096, Collect(Round2));
  // Stealing means not every worker necessarily runs a chunk, but every
  // participating thread must come from the one persistent 4-thread team
  // — across both dispatches, never more than 4 distinct ids.
  std::set<std::thread::id> Union = Round1;
  Union.insert(Round2.begin(), Round2.end());
  EXPECT_GE(Union.size(), 1u);
  EXPECT_LE(Union.size(), 4u) << "persistent pool must reuse its threads";
}

TEST(TaskBackend, AdaptsSpinLimitToOversubscription) {
  unsigned Hw = std::thread::hardware_concurrency();
  if (Hw == 0)
    GTEST_SKIP() << "hardware concurrency unknown";
  TaskBackend Oversubscribed(Hw + 2);
  EXPECT_EQ(Oversubscribed.spinLimit(), 0u);
  TaskBackend Forced(Hw + 2, Schedule::staticBlock(), /*SpinLimit=*/128);
  EXPECT_EQ(Forced.spinLimit(), 128u);
}

TEST(TaskBackend, RunDagRunsEveryNodeOnceAfterItsDeps) {
  // Layered random-ish graph: node I in layer L depends on 1-3 nodes of
  // layer L-1.  Record per-node completion stamps and check every edge.
  for (unsigned Workers : {1u, 2u, 4u}) {
    TaskBackend B(Workers);
    TaskDag Dag;
    constexpr size_t Layers = 6, PerLayer = 9, N = Layers * PerLayer;
    std::vector<size_t> Id(N);
    for (size_t L = 0; L < Layers; ++L)
      for (size_t I = 0; I < PerLayer; ++I) {
        size_t Node = L * PerLayer + I;
        Id[Node] = Dag.add(Node);
        if (L > 0)
          for (size_t K = 0; K <= (I + L) % 3; ++K)
            Dag.addDep(Id[(L - 1) * PerLayer + (I + K) % PerLayer],
                       Id[Node]);
      }

    std::vector<std::atomic<uint64_t>> Stamp(N);
    for (auto &S : Stamp)
      S.store(0);
    std::atomic<uint64_t> Clock{0};
    std::atomic<size_t> Runs{0};
    B.runDag(Dag, [&](uint64_t Payload) {
      Runs.fetch_add(1);
      Stamp[Payload].store(Clock.fetch_add(1) + 1);
    });

    EXPECT_EQ(Runs.load(), N) << "workers=" << Workers;
    for (size_t L = 1; L < Layers; ++L)
      for (size_t I = 0; I < PerLayer; ++I)
        for (size_t K = 0; K <= (I + L) % 3; ++K) {
          size_t Node = L * PerLayer + I;
          size_t Dep = (L - 1) * PerLayer + (I + K) % PerLayer;
          EXPECT_LT(Stamp[Dep].load(), Stamp[Node].load())
              << "workers=" << Workers << " edge " << Dep << "->" << Node;
        }
  }
}

TEST(TaskBackend, RunDagIsReusableAcrossRuns) {
  // FusedSolver builds the step graph once and re-runs it every step;
  // dependency counters must reset per run.
  TaskBackend B(2);
  TaskDag Dag;
  size_t A = Dag.add(0), Bn = Dag.add(1), C = Dag.add(2), D = Dag.add(3);
  Dag.addDep(A, Bn);
  Dag.addDep(A, C);
  Dag.addDep(Bn, D);
  Dag.addDep(C, D);
  Dag.addDep(A, D); // duplicate-path edge: counted and released once
  for (int Round = 0; Round < 50; ++Round) {
    std::atomic<int> Order{0};
    int At[4] = {-1, -1, -1, -1};
    B.runDag(Dag, [&](uint64_t P) { At[P] = Order.fetch_add(1); });
    EXPECT_EQ(At[0], 0) << "round " << Round;
    EXPECT_EQ(At[3], 3) << "round " << Round;
    EXPECT_EQ(Order.load(), 4) << "round " << Round;
  }
}

TEST(TaskBackend, RunDagCountsRegionsAndNestedCallsRunInline) {
  TaskBackend B(2);
  TaskDag Empty;
  B.runDag(Empty, [](uint64_t) {});
  EXPECT_EQ(B.regionsDispatched(), 0u) << "empty DAG is not a region";

  TaskDag Dag;
  size_t A = Dag.add(7);
  Dag.addDep(A, Dag.add(8));
  std::atomic<int> Outer{0}, Inner{0};
  TaskDag Nested;
  Nested.add(1);
  Nested.add(2);
  B.runDag(Dag, [&](uint64_t) {
    Outer.fetch_add(1);
    // From inside a task, nested dispatches must run inline (and stay
    // uncounted), like nested parallelFor regions.
    B.runDag(Nested, [&](uint64_t) { Inner.fetch_add(1); });
    B.parallelFor(0, 3, [&](size_t Lo, size_t Hi) {
      Inner.fetch_add(static_cast<int>(Hi - Lo));
    });
  });
  EXPECT_EQ(Outer.load(), 2);
  EXPECT_EQ(Inner.load(), 2 * (2 + 3));
  EXPECT_EQ(B.regionsDispatched(), 1u);
}

TEST(RuntimeFactory, ParsesBackendNames) {
  EXPECT_EQ(parseBackendKind("serial"), BackendKind::Serial);
  EXPECT_EQ(parseBackendKind("spin-pool"), BackendKind::SpinPool);
  EXPECT_EQ(parseBackendKind("sac"), BackendKind::SpinPool);
  EXPECT_EQ(parseBackendKind("fork-join"), BackendKind::ForkJoin);
  EXPECT_EQ(parseBackendKind("FORTRAN"), BackendKind::ForkJoin);
  EXPECT_EQ(parseBackendKind("openmp"), BackendKind::OpenMp);
  EXPECT_EQ(parseBackendKind("omp"), BackendKind::OpenMp);
  EXPECT_EQ(parseBackendKind("tasks"), BackendKind::Tasks);
  EXPECT_EQ(parseBackendKind("task"), BackendKind::Tasks);
  EXPECT_FALSE(parseBackendKind("cuda").has_value());
}

TEST(RuntimeFactory, NamesRoundTrip) {
  for (BackendKind K :
       {BackendKind::Serial, BackendKind::SpinPool, BackendKind::ForkJoin,
        BackendKind::OpenMp, BackendKind::Tasks})
    EXPECT_EQ(parseBackendKind(backendKindName(K)), K);
}

//===----------------------------------------------------------------------===//
// OpenMP cross-check backend (build-dependent)
//===----------------------------------------------------------------------===//

TEST(OmpBackend, FactoryMatchesAvailability) {
  auto B = createBackend(BackendKind::OpenMp, 2);
  EXPECT_EQ(B != nullptr, openMpAvailable());
}

TEST(OmpBackend, EachIterationRunsExactlyOnce) {
  if (!openMpAvailable())
    GTEST_SKIP() << "build has no OpenMP support";
  auto B = createBackend(BackendKind::OpenMp, 4);
  constexpr size_t N = 5003;
  std::vector<std::atomic<int>> Hits(N);
  for (auto &H : Hits)
    H.store(0);
  B->parallelFor(0, N, [&Hits](size_t Begin, size_t End) {
    for (size_t I = Begin; I < End; ++I)
      Hits[I].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t I = 0; I < N; ++I)
    ASSERT_EQ(Hits[I].load(), 1) << "iteration " << I;
}

TEST(OmpBackend, NestedCallsRunInline) {
  if (!openMpAvailable())
    GTEST_SKIP() << "build has no OpenMP support";
  auto B = createBackend(BackendKind::OpenMp, 2);
  std::atomic<int> Inner(0);
  B->parallelFor(0, 2, [&](size_t Begin, size_t End) {
    for (size_t I = Begin; I < End; ++I)
      B->parallelFor(0, 5, [&Inner](size_t B2, size_t E2) {
        Inner.fetch_add(static_cast<int>(E2 - B2));
      });
  });
  EXPECT_EQ(Inner.load(), 10);
}

TEST(OmpBackend, ManyBackToBackDispatches) {
  if (!openMpAvailable())
    GTEST_SKIP() << "build has no OpenMP support";
  auto B = createBackend(BackendKind::OpenMp, 3);
  std::vector<long> Data(61, 0);
  for (int Round = 0; Round < 200; ++Round)
    B->parallelFor(0, Data.size(), [&Data](size_t Begin, size_t End) {
      for (size_t I = Begin; I < End; ++I)
        Data[I] += 1;
    });
  for (long V : Data)
    ASSERT_EQ(V, 200);
}
