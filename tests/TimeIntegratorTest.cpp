//===- tests/TimeIntegratorTest.cpp - SSP Runge-Kutta tests ---------------===//

#include "numerics/TimeIntegrators.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace sacfd;

namespace {

const TimeIntegratorKind AllIntegrators[] = {TimeIntegratorKind::ForwardEuler,
                                             TimeIntegratorKind::SspRk2,
                                             TimeIntegratorKind::SspRk3};

/// Integrates du/dt = Rhs(u) from 0 to T with N steps of the scheme.
template <typename Fn>
double integrateScalar(TimeIntegratorKind Kind, double U0, double T, int N,
                       Fn Rhs) {
  double U = U0;
  double Dt = T / N;
  for (int Step = 0; Step < N; ++Step)
    advanceSsp(Kind, U, Dt, Rhs,
               [](double A, double Un, double B, double Stage, double Dt2,
                  double L) { return A * Un + B * (Stage + Dt2 * L); });
  return U;
}

/// Measured convergence order on du/dt = -u over [0, 1].
double measuredOrder(TimeIntegratorKind Kind) {
  auto Rhs = [](double U) { return -U; };
  double Exact = std::exp(-1.0);
  double ECoarse = std::fabs(integrateScalar(Kind, 1.0, 1.0, 20, Rhs) - Exact);
  double EFine = std::fabs(integrateScalar(Kind, 1.0, 1.0, 40, Rhs) - Exact);
  return std::log2(ECoarse / EFine);
}

class IntegratorSweep
    : public ::testing::TestWithParam<TimeIntegratorKind> {};

} // namespace

TEST(TimeIntegrators, AdvanceSspIntoMatchesAdvanceSspBitwise) {
  // The buffer-reusing driver must replay exactly the same stage
  // arithmetic as the allocating one — same operations, same order — on
  // a problem where rounding would expose any reassociation.
  auto Rhs = [](double U) { return std::sin(U) - 0.3 * U * U; };
  for (TimeIntegratorKind K : AllIntegrators) {
    double A = 0.8, B = 0.8;
    double Dt = 0.07;
    for (int Step = 0; Step < 25; ++Step) {
      advanceSsp(K, A, Dt, Rhs,
                 [](double PA, double Un, double PB, double Stage,
                    double Dt2, double L) {
                   return PA * Un + PB * (Stage + Dt2 * L);
                 });
      double Un = 0.0, L = 0.0;
      advanceSspInto(
          K, B, Dt, Un, L,
          [&Rhs](double U, double &Out) { Out = Rhs(U); },
          [](double PA, double Un2, double PB, double &U, double Dt2,
             double L2) { U = PA * Un2 + PB * (U + Dt2 * L2); });
      ASSERT_EQ(A, B) << timeIntegratorKindName(K) << " step " << Step;
    }
  }
}

TEST_P(IntegratorSweep, StageWeightsAreConvexCombinations) {
  // SSP requirement: A_i + B_i = 1 with both nonnegative (stage 1 has
  // A = 0, B = 1).
  for (const SspStage &S : sspStages(GetParam())) {
    EXPECT_GE(S.PrevWeight, 0.0);
    EXPECT_GE(S.StageWeight, 0.0);
    EXPECT_NEAR(S.PrevWeight + S.StageWeight, 1.0, 1e-15);
  }
}

TEST_P(IntegratorSweep, StageCountMatchesOrder) {
  EXPECT_EQ(sspStages(GetParam()).size(), timeIntegratorOrder(GetParam()));
}

TEST_P(IntegratorSweep, ExactForConstantInTimeRhs) {
  // du/dt = c: every convex-combination RK integrates this exactly.
  auto Rhs = [](double) { return 2.5; };
  double U = integrateScalar(GetParam(), 1.0, 2.0, 7, Rhs);
  EXPECT_NEAR(U, 1.0 + 2.5 * 2.0, 1e-12);
}

TEST_P(IntegratorSweep, MeasuredConvergenceOrder) {
  double Order = measuredOrder(GetParam());
  double Formal = static_cast<double>(timeIntegratorOrder(GetParam()));
  EXPECT_GT(Order, Formal - 0.25);
  EXPECT_LT(Order, Formal + 0.75);
}

TEST_P(IntegratorSweep, StableOnLinearProblemAtCflOne) {
  // du/dt = -u with dt = 1 is within every SSP method's absolute
  // stability region; iterates must decay monotonically in magnitude.
  double U = 1.0;
  auto Rhs = [](double V) { return -V; };
  for (int Step = 0; Step < 50; ++Step) {
    double Prev = U;
    advanceSsp(GetParam(), U, 1.0, Rhs,
               [](double A, double Un, double B, double Stage, double Dt,
                  double L) { return A * Un + B * (Stage + Dt * L); });
    EXPECT_LE(std::fabs(U), std::fabs(Prev) + 1e-15);
  }
  EXPECT_LT(std::fabs(U), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    AllIntegrators, IntegratorSweep, ::testing::ValuesIn(AllIntegrators),
    [](const ::testing::TestParamInfo<TimeIntegratorKind> &I) {
      return timeIntegratorKindName(I.param);
    });

TEST(TimeIntegrators, Rk3MatchesShuOsherTable) {
  auto Stages = sspStages(TimeIntegratorKind::SspRk3);
  ASSERT_EQ(Stages.size(), 3u);
  EXPECT_DOUBLE_EQ(Stages[0].PrevWeight, 0.0);
  EXPECT_DOUBLE_EQ(Stages[0].StageWeight, 1.0);
  EXPECT_DOUBLE_EQ(Stages[1].PrevWeight, 0.75);
  EXPECT_DOUBLE_EQ(Stages[1].StageWeight, 0.25);
  EXPECT_NEAR(Stages[2].PrevWeight, 1.0 / 3.0, 1e-15);
  EXPECT_NEAR(Stages[2].StageWeight, 2.0 / 3.0, 1e-15);
}

TEST(TimeIntegrators, NameParsingRoundTrip) {
  for (TimeIntegratorKind K : AllIntegrators)
    EXPECT_EQ(parseTimeIntegratorKind(timeIntegratorKindName(K)), K);
  EXPECT_EQ(parseTimeIntegratorKind("euler"),
            TimeIntegratorKind::ForwardEuler);
  EXPECT_FALSE(parseTimeIntegratorKind("rk4").has_value());
}

TEST(TimeIntegrators, NonlinearOscillatorEnergyErrorShrinksWithOrder) {
  // Integrate u'' = -u as a 2-state system wrapped in a struct; the
  // energy drift after one period should fall sharply with order.
  struct Phase {
    double Q, P;
  };
  auto Rhs = [](Phase S) { return Phase{S.P, -S.Q}; };
  auto Combine = [](double A, Phase Un, double B, Phase Stage, double Dt,
                    Phase L) {
    return Phase{A * Un.Q + B * (Stage.Q + Dt * L.Q),
                 A * Un.P + B * (Stage.P + Dt * L.P)};
  };

  // Position error after one full period vs the exact solution cos(t).
  auto PositionError = [&](TimeIntegratorKind K) {
    Phase S{1.0, 0.0};
    int N = 400;
    double Dt = 2.0 * M_PI / N;
    for (int Step = 0; Step < N; ++Step)
      advanceSsp(K, S, Dt, Rhs, Combine);
    return std::fabs(S.Q - 1.0);
  };

  double E1 = PositionError(TimeIntegratorKind::ForwardEuler);
  double E2 = PositionError(TimeIntegratorKind::SspRk2);
  double E3 = PositionError(TimeIntegratorKind::SspRk3);
  // Forward Euler's amplitude blows up (error O(dt) global); RK2's
  // amplification factor happens to be fourth-order accurate in amplitude
  // on this linear problem, so only strict ordering is asserted there.
  EXPECT_GT(E1, 100.0 * E2);
  EXPECT_GT(E2, E3);
}
