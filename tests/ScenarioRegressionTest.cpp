//===- tests/ScenarioRegressionTest.cpp - Workload gallery regression ------===//
//
// The scenario registry's three contracts:
//   1. the spec grammar and registry lookups fail with structured errors
//      (never a silent fallback),
//   2. every registered scenario's pinned run reproduces its checked-in
//      reference hash on BOTH engines (the regression matrix), and
//   3. factories that forget an end time are rejected (the old
//      EndTime-defaults-to-1.0 hole stays closed).
//
//===----------------------------------------------------------------------===//

#include "solver/Problems.h"
#include "solver/RunConfig.h"
#include "solver/Scenario.h"
#include "solver/SolverFactory.h"
#include "support/CommandLine.h"

#include <gtest/gtest.h>

using namespace sacfd;

//===----------------------------------------------------------------------===//
// Spec grammar
//===----------------------------------------------------------------------===//

TEST(ScenarioSpec, ParsesNameOnly) {
  SpecParse<ScenarioSpec> S = ScenarioSpec::parse("sod");
  ASSERT_TRUE(S);
  EXPECT_EQ(S.Value->Name, "sod");
  EXPECT_TRUE(S.Value->Params.empty());
}

TEST(ScenarioSpec, ParsesParameters) {
  SpecParse<ScenarioSpec> S =
      ScenarioSpec::parse("riemann2d:config=3,cells=64");
  ASSERT_TRUE(S);
  EXPECT_EQ(S.Value->Name, "riemann2d");
  ASSERT_EQ(S.Value->Params.size(), 2u);
  ASSERT_NE(S.Value->find("config"), nullptr);
  EXPECT_EQ(*S.Value->find("config"), "3");
  EXPECT_EQ(*S.Value->find("cells"), "64");
  EXPECT_EQ(S.Value->str(), "riemann2d:config=3,cells=64");
}

TEST(ScenarioSpec, StructuredErrors) {
  struct Row {
    const char *Spec;
    const char *ErrorPiece;
  };
  const Row Rows[] = {
      {"", "empty scenario spec"},
      {"Sod", "bad scenario name"},
      {"sod tube", "bad scenario name"},
      {"sod:", "empty parameter list"},
      {"sedov:", "empty parameter list"},
      {"sod:cells", "not key=value"},
      {"sod:cells=", "empty value"},
      {"sod:=3", "bad parameter key"},
      {"sod:cells=3,cells=4", "duplicate parameter"},
      // A trailing or doubled comma makes an *empty segment*; the error
      // must name the offending segment instead of silently dropping it
      // (the old substr loop swallowed trailing commas).
      {"sedov:cells=64,", "empty parameter segment 2 (trailing ',')"},
      {"sod:cells=64,,ghost=2", "empty parameter segment 2 (before ',')"},
      {"sod:,cells=64", "empty parameter segment 1 (before ',')"},
  };
  for (const Row &R : Rows) {
    SpecParse<ScenarioSpec> S = ScenarioSpec::parse(R.Spec);
    EXPECT_FALSE(S) << R.Spec;
    EXPECT_NE(S.Error.find(R.ErrorPiece), std::string::npos)
        << "spec '" << R.Spec << "' produced: " << S.Error;
  }
}

//===----------------------------------------------------------------------===//
// Registry contents and lookups
//===----------------------------------------------------------------------===//

TEST(ScenarioRegistry, GalleryIsFullyPopulated) {
  const ScenarioRegistry &R = ScenarioRegistry::instance();
  // The acceptance floor: at least 9 scenarios, including the migrated
  // classics and the four new workloads.
  EXPECT_GE(R.infos().size(), 9u);
  for (const char *Name :
       {"sod", "lax", "shu-osher", "blast-waves", "moving-contact",
        "smooth-advection", "uniform-1d"})
    EXPECT_EQ(R.dimOf(Name), 1u) << Name;
  for (const char *Name :
       {"shock-interaction", "riemann2d", "smooth-advection-2d",
        "isentropic-vortex", "uniform-2d", "sedov", "double-mach",
        "shock-bubble"})
    EXPECT_EQ(R.dimOf(Name), 2u) << Name;
}

TEST(ScenarioRegistry, UnknownNameListsKnownScenarios) {
  SpecParse<ScenarioSpec> Spec = ScenarioSpec::parse("not-a-scenario");
  ASSERT_TRUE(Spec);
  SpecParse<ScenarioSpec> V =
      ScenarioRegistry::instance().validate(*Spec.Value);
  ASSERT_FALSE(V);
  EXPECT_NE(V.Error.find("unknown scenario 'not-a-scenario'"),
            std::string::npos)
      << V.Error;
  EXPECT_NE(V.Error.find("sod"), std::string::npos) << V.Error;
  EXPECT_NE(V.Error.find("double-mach"), std::string::npos) << V.Error;
}

TEST(ScenarioRegistry, RankMismatchIsStructured) {
  SpecParse<ScenarioSpec> Spec = ScenarioSpec::parse("sod");
  ASSERT_TRUE(Spec);
  SpecParse<Problem<2>> P = ScenarioRegistry::instance().buildProblem<2>(
      *Spec.Value, SchemeConfig::figureScheme());
  ASSERT_FALSE(P);
  EXPECT_NE(P.Error.find("1D workload"), std::string::npos) << P.Error;
}

TEST(ScenarioRegistry, UndeclaredKeyIsStructured) {
  SpecParse<ScenarioSpec> Spec = ScenarioSpec::parse("sod:mach=3");
  ASSERT_TRUE(Spec);
  SpecParse<ScenarioSpec> V =
      ScenarioRegistry::instance().validate(*Spec.Value);
  ASSERT_FALSE(V);
  EXPECT_NE(V.Error.find("does not accept parameter 'mach'"),
            std::string::npos)
      << V.Error;
  EXPECT_NE(V.Error.find("cells"), std::string::npos) << V.Error;
}

TEST(ScenarioRegistry, BuildHonorsCellsAndGhost) {
  SpecParse<ScenarioSpec> Spec = ScenarioSpec::parse("sod:cells=123");
  ASSERT_TRUE(Spec);
  SchemeConfig Weno5 = SchemeConfig::figureScheme();
  Weno5.Recon = ReconstructionKind::Weno5;
  SpecParse<Problem<1>> P =
      ScenarioRegistry::instance().buildProblem<1>(*Spec.Value, Weno5);
  ASSERT_TRUE(P) << P.Error;
  EXPECT_EQ(P.Value->Domain.cells(0), 123u);
  EXPECT_EQ(P.Value->Domain.ghost(), ghostCells(ReconstructionKind::Weno5));
  EXPECT_TRUE(P.Value->hasEndTime());
}

TEST(ScenarioRegistry, BadParameterValuesAreStructured) {
  struct Row {
    const char *Spec;
    const char *ErrorPiece;
  };
  const Row Rows[] = {
      {"riemann2d:config=7", "unsupported config 7"},
      {"riemann2d:config=abc", "non-negative integer"},
      {"shock-interaction:ms=0.5", "ms must be >= 1"},
      {"shock-interaction:ms=fast", "wants a number"},
      {"sod:cells=0", "cells must be positive"},
      {"sod:cells=-4", "non-negative integer"},
  };
  for (const Row &R : Rows) {
    SpecParse<ScenarioSpec> Spec = ScenarioSpec::parse(R.Spec);
    ASSERT_TRUE(Spec) << R.Spec;
    std::string Error;
    if (Spec.Value->Name == "sod") {
      SpecParse<Problem<1>> P = ScenarioRegistry::instance().buildProblem<1>(
          *Spec.Value, SchemeConfig::figureScheme());
      EXPECT_FALSE(P) << R.Spec;
      Error = P.Error;
    } else {
      SpecParse<Problem<2>> P = ScenarioRegistry::instance().buildProblem<2>(
          *Spec.Value, SchemeConfig::figureScheme());
      EXPECT_FALSE(P) << R.Spec;
      Error = P.Error;
    }
    EXPECT_NE(Error.find(R.ErrorPiece), std::string::npos)
        << "spec '" << R.Spec << "' produced: " << Error;
  }
}

TEST(ScenarioRegistry, Riemann2dConfig3Builds) {
  SpecParse<ScenarioSpec> Spec = ScenarioSpec::parse("riemann2d:config=3");
  ASSERT_TRUE(Spec);
  SpecParse<Problem<2>> P = ScenarioRegistry::instance().buildProblem<2>(
      *Spec.Value, SchemeConfig::figureScheme());
  ASSERT_TRUE(P) << P.Error;
  EXPECT_EQ(P.Value->Name, "riemann-2d-c3");
  EXPECT_DOUBLE_EQ(P.Value->EndTime, 0.3);
  // Lax-Liu config 3 SW quadrant.
  EXPECT_NEAR(P.Value->InitialState({0.25, 0.25}).Rho, 0.138, 1e-12);
}

//===----------------------------------------------------------------------===//
// EndTime enforcement + registrar extensibility
//===----------------------------------------------------------------------===//

namespace {

Scenario<1> endTimelessScenario() {
  Scenario<1> S;
  S.Name = "test-endtimeless";
  S.Summary = "factory that forgets EndTime (must be rejected)";
  S.DefaultCells = 8;
  S.Build = [](const ScenarioArgs &A) {
    Problem<1> P = sodProblem(A.cells(), A.ghostLayers());
    P.EndTime = 0.0; // the bug under test
    return SpecParse<Problem<1>>::ok(std::move(P));
  };
  return S;
}

// Out-of-tree registration path: a static registrar object.
ScenarioRegistrar<1> TestRegistrar(endTimelessScenario());

} // namespace

TEST(ScenarioRegistry, RegistrarRegistersAtStaticInit) {
  EXPECT_EQ(ScenarioRegistry::instance().dimOf("test-endtimeless"), 1u);
}

TEST(ScenarioRegistry, MissingEndTimeIsRejected) {
  SpecParse<ScenarioSpec> Spec = ScenarioSpec::parse("test-endtimeless");
  ASSERT_TRUE(Spec);
  SpecParse<Problem<1>> P = ScenarioRegistry::instance().buildProblem<1>(
      *Spec.Value, SchemeConfig::figureScheme());
  ASSERT_FALSE(P);
  EXPECT_NE(P.Error.find("without an end time"), std::string::npos)
      << P.Error;
}

TEST(Problem, EndTimeDefaultsToUnset) {
  Problem<1> P;
  EXPECT_FALSE(P.hasEndTime());
  P.EndTime = 0.2;
  EXPECT_TRUE(P.hasEndTime());
}

//===----------------------------------------------------------------------===//
// RunConfig integration (--scenario flag)
//===----------------------------------------------------------------------===//

namespace {

bool parseAndResolve(RunConfig &Cfg, std::vector<const char *> Argv,
                     std::string &Error) {
  Argv.insert(Argv.begin(), "test");
  CommandLine CL("test", "scenario test tool");
  Cfg.registerAll(CL);
  if (!CL.parse(static_cast<int>(Argv.size()), Argv.data()))
    return false;
  return Cfg.resolve(Error);
}

} // namespace

TEST(ScenarioRunConfig, ResolveRejectsMalformedAndUnknownSpecs) {
  for (const char *Spec : {"sod:", "nope", "sod:mach=3"}) {
    RunConfig Cfg;
    std::string Error;
    EXPECT_FALSE(parseAndResolve(Cfg, {"--scenario", Spec}, Error)) << Spec;
    EXPECT_NE(Error.find("--scenario"), std::string::npos) << Error;
  }
}

TEST(ScenarioRunConfig, TuningAppliesUnlessUserOverrides) {
  {
    RunConfig Cfg;
    std::string Error;
    ASSERT_TRUE(parseAndResolve(Cfg, {"--scenario", "sedov"}, Error))
        << Error;
    EXPECT_DOUBLE_EQ(Cfg.Scheme.Cfl, 0.3); // sedov's recommended CFL
  }
  {
    RunConfig Cfg;
    std::string Error;
    ASSERT_TRUE(parseAndResolve(
        Cfg, {"--scenario", "sedov", "--cfl", "0.45"}, Error))
        << Error;
    EXPECT_DOUBLE_EQ(Cfg.Scheme.Cfl, 0.45); // explicit flag wins
  }
}

TEST(ScenarioRunConfig, ResolveProblemSwapsWorkload) {
  RunConfig Cfg;
  std::string Error;
  ASSERT_TRUE(
      parseAndResolve(Cfg, {"--scenario", "lax:cells=48"}, Error))
      << Error;
  ASSERT_TRUE(Cfg.hasScenario());
  Problem<1> P = resolveProblem(sodProblem(100), Cfg);
  EXPECT_EQ(P.Name, "lax");
  EXPECT_EQ(P.Domain.cells(0), 48u);

  RunConfig NoScenario;
  ASSERT_TRUE(parseAndResolve(NoScenario, {}, Error)) << Error;
  EXPECT_EQ(resolveProblem(sodProblem(100), NoScenario).Name, "sod");
}

//===----------------------------------------------------------------------===//
// The pinned regression matrix
//===----------------------------------------------------------------------===//

TEST(ScenarioRegression, PinnedRunsMatchReferenceOnBothEngines) {
  const ScenarioRegistry &R = ScenarioRegistry::instance();
  for (const ScenarioInfo &Info : R.infos()) {
    if (Info.Name.rfind("test-", 0) == 0)
      continue; // shadow scenarios registered by this binary
    ASSERT_TRUE(Info.Reference.has_value())
        << "scenario '" << Info.Name << "' has no checked-in reference; "
        << rebaselineHint();
    for (EngineKind Engine : {EngineKind::Array, EngineKind::Fused}) {
      SpecParse<PinnedResult> Run = runPinnedScenario(Info.Name, Engine);
      ASSERT_TRUE(Run) << Run.Error;
      EXPECT_EQ(Run.Value->Hash, *Info.Reference)
          << "scenario '" << Info.Name << "' on engine "
          << engineKindName(Engine)
          << " diverged from the pinned reference; if the numerics "
          << "change is intentional, " << rebaselineHint();
      EXPECT_TRUE(Run.Value->matched()) << Info.Name;
      EXPECT_GT(Run.Value->Time, 0.0) << Info.Name;
      EXPECT_EQ(Run.Value->Steps, Info.Pinned.Steps) << Info.Name;
    }
  }
}

TEST(ScenarioRegression, PinnedHashesUnchangedUnderSoALayout) {
  // The SoA field layout is a pure storage transform: every pinned
  // scenario must reproduce the exact checked-in reference hash that the
  // AoS runs pinned, on both engines.  A divergence here means the
  // layout (or the vectorized kernels it enables) changed the numerics.
  const ScenarioRegistry &R = ScenarioRegistry::instance();
  for (const ScenarioInfo &Info : R.infos()) {
    if (Info.Name.rfind("test-", 0) == 0)
      continue;
    ASSERT_TRUE(Info.Reference.has_value()) << Info.Name;
    for (EngineKind Engine : {EngineKind::Array, EngineKind::Fused}) {
      SpecParse<PinnedResult> Run =
          runPinnedScenario(Info.Name, Engine, Layout::SoA);
      ASSERT_TRUE(Run) << Run.Error;
      EXPECT_EQ(Run.Value->Hash, *Info.Reference)
          << "scenario '" << Info.Name << "' on engine "
          << engineKindName(Engine)
          << " under --layout soa diverged from the pinned reference";
    }
  }
}

TEST(ScenarioRegression, FieldStateHashDiscriminates) {
  // Different scenarios and different step counts produce different
  // hashes (FNV over the full field + clock).
  SpecParse<PinnedResult> Sod =
      runPinnedScenario("sod", EngineKind::Array);
  SpecParse<PinnedResult> Lax =
      runPinnedScenario("lax", EngineKind::Array);
  ASSERT_TRUE(Sod);
  ASSERT_TRUE(Lax);
  EXPECT_NE(Sod.Value->Hash, Lax.Value->Hash);
}
