//===- tests/ShardTest.cpp - Multi-process shard decomposition ------------===//
//
// The shard runtime's contract is bit-identity: an N-shard run over
// row-block sub-grids with shared-memory halo exchange must reproduce
// the single-process run bit for bit — field hash, clock and step count
// — on every workload, including ragged partitions, periodic rings and
// time-dependent prescribed boundaries.  The fault-injection tests then
// pin the elastic-recovery story: SIGKILLing one shard mid-run resumes
// it from its own checkpoint store (others wait) and still converges on
// the same bitwise final state; without durability the fleet rewinds
// globally and replays to the same state.
//
// The ghost-row suite compares each shard's full local storage against
// the single-process storage.  Internal halo ghost rows are excluded
// from the direct comparison: both runs fill ghosts at the *top* of each
// RK stage, so after the final update a physical ghost row holds the
// same stale fill in both runs, but the single-process counterpart of an
// internal halo row is an interior cell the final update refreshed.
// Interior bit-identity (the hash checks) covers those rows instead.
//
//===----------------------------------------------------------------------===//

#include "shard/ShardCoordinator.h"
#include "shard/ShardPlan.h"
#include "solver/Problems.h"
#include "solver/Scenario.h"
#include "solver/SolverFactory.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

using namespace sacfd;

namespace {

std::string freshDir(const std::string &Name) {
  std::string Dir = std::string(::testing::TempDir()) + "/" + Name;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

/// The worker-equivalent single-process configuration: fused engine on
/// the serial backend.
RunConfig serialConfig(const SchemeConfig &Scheme) {
  RunConfig Cfg;
  Cfg.Scheme = Scheme;
  Cfg.Engine = EngineKind::Fused;
  Cfg.Backend = BackendKind::Serial;
  Cfg.Threads = 1;
  return Cfg;
}

ShardOptions shardOptions(const SchemeConfig &Scheme, unsigned Shards) {
  ShardOptions Opt;
  Opt.Shards = Shards;
  Opt.Scheme = Scheme;
  Opt.Engine = EngineKind::Fused;
  return Opt;
}

bool sameBits(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

bool sameCell(const Cons<2> &A, const Cons<2> &B) {
  return sameBits(A.Rho, B.Rho) && sameBits(A.Mom[0], B.Mom[0]) &&
         sameBits(A.Mom[1], B.Mom[1]) && sameBits(A.E, B.E);
}

/// Runs the single-process reference \p Steps steps and returns the
/// solver (for hash and storage comparison).
SolverRun<2> referenceRun(const Problem<2> &Prob, const SchemeConfig &Scheme,
                          unsigned Steps) {
  SolverRun<2> Run(Prob, serialConfig(Scheme));
  Run.solver().advanceSteps(Steps);
  return Run;
}

/// Asserts that an N-shard run of \p Prob matches the single-process
/// reference: same hash, clock and step count.  With \p CheckStorage,
/// additionally compares every shard's full local storage (ghost rows
/// included) against the single-process storage, masking internal halo
/// ghost rows as documented in the file header.
void expectShardedMatches(const Problem<2> &Prob, const SchemeConfig &Scheme,
                          unsigned Steps, unsigned Shards,
                          bool CheckStorage = false) {
  SCOPED_TRACE("shards=" + std::to_string(Shards));
  SolverRun<2> Ref = referenceRun(Prob, Scheme, Steps);
  const uint64_t RefHash = fieldStateHash(Ref.solver());

  ShardOptions Opt = shardOptions(Scheme, Shards);
  Opt.StorageDump = CheckStorage;
  ShardCoordinator Coord(Prob, Opt);
  ASSERT_TRUE(Coord.start());
  ASSERT_TRUE(Coord.advanceSteps(Steps));
  EXPECT_EQ(Coord.stepCount(), Ref.solver().stepCount());
  EXPECT_TRUE(sameBits(Coord.time(), Ref.solver().time()))
      << Coord.time() << " vs " << Ref.solver().time();
  EXPECT_EQ(Coord.stateHash(), RefHash);

  if (!CheckStorage)
    return;
  const Grid<2> &G = Prob.Domain;
  const unsigned Ng = G.ghost();
  const size_t Rows = G.cells(0), Cols = G.cells(1);
  const size_t StorageCols = Cols + 2 * Ng;
  std::vector<Cons<2>> Global(Ref.solver().field().size());
  Ref.solver().field().exportTo(Global.data());
  const bool Ring = Shards > 1 && rowAxisPeriodic(Prob);
  for (unsigned K = 0; K < Shards; ++K) {
    SCOPED_TRACE("shard=" + std::to_string(K));
    const RowBlock B = Coord.blocks()[K];
    std::vector<Cons<2>> Local;
    ASSERT_TRUE(Coord.exportShardStorage(K, Local));
    ASSERT_EQ(Local.size(), (B.Count + 2 * Ng) * StorageCols);
    const bool LowInternal = Shards > 1 && (K > 0 || Ring);
    const bool HighInternal = Shards > 1 && (K + 1 < Shards || Ring);
    // A ring wrap still maps onto global *ghost* rows, which the
    // single-process periodic fill wrote at the same stage time — those
    // stay in the comparison.
    for (size_t SR = 0; SR < B.Count + 2 * Ng; ++SR) {
      const bool LowGhost = SR < Ng;
      const bool HighGhost = SR >= Ng + B.Count;
      const size_t GR = B.Begin + SR; // global storage row
      const bool MapsToGlobalGhost = GR < Ng || GR >= Ng + Rows;
      if (((LowGhost && LowInternal) || (HighGhost && HighInternal)) &&
          !MapsToGlobalGhost)
        continue; // internal halo row: single-process holds fresher data
      for (size_t C = 0; C < StorageCols; ++C) {
        const Cons<2> &Want = Global[GR * StorageCols + C];
        const Cons<2> &Got = Local[SR * StorageCols + C];
        ASSERT_TRUE(sameCell(Want, Got))
            << "row " << SR << " col " << C << ": rho " << Got.Rho << " vs "
            << Want.Rho;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Static decomposition
//===----------------------------------------------------------------------===//

TEST(ShardPlan, EvenPartition) {
  std::vector<RowBlock> B = rowBlocks(16, 4);
  ASSERT_EQ(B.size(), 4u);
  for (unsigned K = 0; K < 4; ++K) {
    EXPECT_EQ(B[K].Begin, 4u * K);
    EXPECT_EQ(B[K].Count, 4u);
  }
}

TEST(ShardPlan, RaggedPartitionSpreadsRemainder) {
  std::vector<RowBlock> B = rowBlocks(10, 3);
  ASSERT_EQ(B.size(), 3u);
  EXPECT_EQ(B[0].Count, 4u); // the one extra row leads
  EXPECT_EQ(B[1].Count, 3u);
  EXPECT_EQ(B[2].Count, 3u);
  size_t Next = 0;
  for (const RowBlock &Blk : B) {
    EXPECT_EQ(Blk.Begin, Next); // contiguous, in order
    Next += Blk.Count;
  }
  EXPECT_EQ(Next, 10u);
}

TEST(ShardPlan, RowSliceGeometryIsBitwiseGlobal) {
  Problem<2> P = shockInteraction2D(40);
  Grid<2> Slice = Grid<2>::rowSlice(P.Domain, 13, 9);
  EXPECT_EQ(Slice.cells(0), 9u);
  EXPECT_EQ(Slice.cells(1), P.Domain.cells(1));
  for (unsigned A = 0; A < 2; ++A)
    EXPECT_TRUE(sameBits(Slice.dx(A), P.Domain.dx(A)));
  for (size_t I = 0; I < 9; ++I)
    EXPECT_TRUE(sameBits(Slice.cellCenter(0, I),
                         P.Domain.cellCenter(0, I + 13)));
  for (size_t J = 0; J < Slice.cells(1); ++J)
    EXPECT_TRUE(sameBits(Slice.cellCenter(1, J), P.Domain.cellCenter(1, J)));
}

TEST(ShardPlan, HaloSidesReplaceInternalInterfaces) {
  Problem<2> P = shockInteraction2D(40);
  std::vector<RowBlock> B = rowBlocks(P.Domain.cells(0), 3);
  Problem<2> Mid = shardProblem(P, B[1], /*LowHalo=*/true, /*HighHalo=*/true);
  for (bool High : {false, true}) {
    const auto &Segs = Mid.Boundary.Side[boundarySide(0, High)];
    ASSERT_EQ(Segs.size(), 1u);
    EXPECT_EQ(Segs.front().Kind, BcKind::Halo);
  }
  // Tangential sides keep the global physical segments.
  EXPECT_EQ(Mid.Boundary.Side[boundarySide(1, false)].size(),
            P.Boundary.Side[boundarySide(1, false)].size());
}

//===----------------------------------------------------------------------===//
// Bit-identity vs the single-process reference
//===----------------------------------------------------------------------===//

// The gallery's 2D pinned workload: Prescribed (frozen inflow) +
// Reflecting segments on the low row side, Outflow on the high — three
// BC kinds landing on shard edges.  Shards 3 exercises the ragged path
// (40 % 3 != 0); storage checks compare the ghost rows themselves.
TEST(ShardIdentity, ShockInteraction) {
  Problem<2> P = shockInteraction2D(40);
  SchemeConfig Scheme = SchemeConfig::figureScheme();
  for (unsigned Shards : {1u, 2u, 3u, 4u})
    expectShardedMatches(P, Scheme, /*Steps=*/6, Shards,
                         /*CheckStorage=*/true);
}

// Double Mach reflection: Prescribed post-shock state on the low row
// side and the time-dependent prescribed trace along the top — the
// clock-sensitive BC path, on the scenario's pinned tuning (CFL 0.3).
TEST(ShardIdentity, DoubleMach) {
  Problem<2> P = doubleMachReflection(16);
  SchemeConfig Scheme = SchemeConfig::figureScheme();
  Scheme.Cfl = 0.3;
  for (unsigned Shards : {1u, 2u, 4u})
    expectShardedMatches(P, Scheme, /*Steps=*/4, Shards,
                         /*CheckStorage=*/true);
}

// Periodic rows close the shard chain into a ring; the wrap-around halo
// exchange must reproduce the single-process periodic fill bit for bit
// (the global ghost rows stay in the storage comparison).  Ghost depth 3
// here (WENO-ready advection problem) — slabs deeper than the default.
TEST(ShardIdentity, PeriodicRing) {
  Problem<2> P = smoothAdvection2D(24);
  SchemeConfig Scheme = SchemeConfig::figureScheme();
  for (unsigned Shards : {2u, 4u})
    expectShardedMatches(P, Scheme, /*Steps=*/5, Shards,
                         /*CheckStorage=*/true);
}

// advanceTo must reproduce the single-process clamp-and-snap arithmetic
// (final partial step, then the restoreClock snap) across shards.
TEST(ShardIdentity, AdvanceToClampAndSnap) {
  Problem<2> P = shockInteraction2D(32);
  SchemeConfig Scheme = SchemeConfig::figureScheme();
  SolverRun<2> Ref(P, serialConfig(Scheme));
  Ref.solver().advanceTo(30.0);
  ShardCoordinator Coord(P, shardOptions(Scheme, 2));
  ASSERT_TRUE(Coord.start());
  ASSERT_TRUE(Coord.advanceTo(30.0));
  EXPECT_EQ(Coord.stepCount(), Ref.solver().stepCount());
  EXPECT_TRUE(sameBits(Coord.time(), Ref.solver().time()));
  EXPECT_EQ(Coord.stateHash(), fieldStateHash(Ref.solver()));
}

//===----------------------------------------------------------------------===//
// Fault injection and durability
//===----------------------------------------------------------------------===//

// Kill one shard at a step barrier with a current checkpoint: only that
// shard restarts (elastic path — no global rewind), resumes from its own
// store, and the run converges on the uninterrupted bitwise final state.
TEST(ShardFault, KillOneShardResumesFromItsStore) {
  Problem<2> P = shockInteraction2D(32);
  SchemeConfig Scheme = SchemeConfig::figureScheme();
  SolverRun<2> Ref = referenceRun(P, Scheme, 6);
  const uint64_t WantHash = fieldStateHash(Ref.solver());

  ShardOptions Opt = shardOptions(Scheme, 2);
  Opt.CheckpointDir = freshDir("shard-kill-one");
  Opt.CheckpointEvery = 1;
  ShardCoordinator Coord(P, Opt);
  ASSERT_TRUE(Coord.start());
  ASSERT_TRUE(Coord.advanceSteps(3));
  Coord.killShard(1);
  ASSERT_TRUE(Coord.advanceSteps(3));
  EXPECT_EQ(Coord.stepCount(), 6u);
  EXPECT_EQ(Coord.restartCount(), 1u);
  EXPECT_EQ(Coord.fullRestartCount(), 0u);
  EXPECT_EQ(Coord.stateHash(), WantHash);
}

// Without durability the only recovery is the global rewind: the whole
// fleet restarts from the initial state and replays — deterministically
// onto the same final hash.
TEST(ShardFault, KillWithoutCheckpointsRewindsGlobally) {
  Problem<2> P = shockInteraction2D(32);
  SchemeConfig Scheme = SchemeConfig::figureScheme();
  SolverRun<2> Ref = referenceRun(P, Scheme, 5);

  ShardCoordinator Coord(P, shardOptions(Scheme, 2));
  ASSERT_TRUE(Coord.start());
  ASSERT_TRUE(Coord.advanceSteps(3));
  Coord.killShard(0);
  ASSERT_TRUE(Coord.advanceSteps(2));
  EXPECT_EQ(Coord.stepCount(), 5u);
  EXPECT_GE(Coord.fullRestartCount(), 1u);
  EXPECT_EQ(Coord.stateHash(), fieldStateHash(Ref.solver()));
}

// A shard that dies *inside* AdvanceDt — here shard 1, at the top of
// step 4's first RK-stage halo fill, before publishing anything — wedges
// shard 0 in its mailbox receive spin, so shard 0's ack never arrives
// and the pid the coordinator must notice is not the one whose ack it is
// waiting on.  Nothing of the step was published (the barrier criterion
// still holds) and the checkpoint is current, so the elastic path
// restarts just the victim, which re-drives the interrupted step and
// unwedges its neighbor; the run still lands on the uninterrupted bits.
TEST(ShardFault, DiesMidStepBeforePublishElasticRestart) {
  Problem<2> P = shockInteraction2D(32);
  SchemeConfig Scheme = SchemeConfig::figureScheme();
  SolverRun<2> Ref = referenceRun(P, Scheme, 6);

  ShardOptions Opt = shardOptions(Scheme, 2);
  Opt.CheckpointDir = freshDir("shard-kill-midstep");
  Opt.CheckpointEvery = 1;
  ShardCoordinator Coord(P, Opt);
  ASSERT_TRUE(Coord.start());
  ASSERT_TRUE(Coord.advanceSteps(3));
  Coord.killShardAtFill(1, uint64_t(Coord.stepCount()) *
                               Coord.stagesPerStep());
  ASSERT_TRUE(Coord.advanceSteps(3));
  EXPECT_EQ(Coord.stepCount(), 6u);
  EXPECT_EQ(Coord.restartCount(), 1u);
  EXPECT_EQ(Coord.fullRestartCount(), 0u);
  EXPECT_EQ(Coord.stateHash(), fieldStateHash(Ref.solver()));
}

// Dying one stage later — after the first stage's slab was published —
// breaks the barrier criterion: recovery must take the global rewind
// even though a checkpoint at the current step count exists, because the
// mailboxes hold half a step.  The rewind replays onto the same bits.
TEST(ShardFault, DiesMidStagePublishedForcesGlobalRewind) {
  Problem<2> P = shockInteraction2D(32);
  SchemeConfig Scheme = SchemeConfig::figureScheme();
  SolverRun<2> Ref = referenceRun(P, Scheme, 6);

  ShardOptions Opt = shardOptions(Scheme, 2);
  Opt.CheckpointDir = freshDir("shard-kill-midstage");
  Opt.CheckpointEvery = 1;
  ShardCoordinator Coord(P, Opt);
  ASSERT_TRUE(Coord.start());
  ASSERT_GE(Coord.stagesPerStep(), 2u); // the kill targets a stage-1 fill
  ASSERT_TRUE(Coord.advanceSteps(3));
  Coord.killShardAtFill(
      1, uint64_t(Coord.stepCount()) * Coord.stagesPerStep() + 1);
  ASSERT_TRUE(Coord.advanceSteps(3));
  EXPECT_EQ(Coord.stepCount(), 6u);
  EXPECT_EQ(Coord.restartCount(), 0u);
  EXPECT_GE(Coord.fullRestartCount(), 1u);
  EXPECT_EQ(Coord.stateHash(), fieldStateHash(Ref.solver()));
}

// An end-time snap applied after the latest checkpoint was written makes
// that checkpoint's clock stale: a targeted restart would resume the
// victim on the pre-snap clock while the survivors run the snapped one,
// diverging the time-dependent prescribed boundary (double Mach top
// wall, owned here by the killed shard).  Recovery must detect the snap
// in its replay log, fall back to the global rewind, and re-apply the
// snap during replay.
TEST(ShardFault, KillAfterSnapRewindsGloballyAndReplaysSnap) {
  Problem<2> P = doubleMachReflection(16);
  SchemeConfig Scheme = SchemeConfig::figureScheme();
  Scheme.Cfl = 0.3;
  SolverRun<2> Ref(P, serialConfig(Scheme));
  Ref.solver().advanceSteps(3);
  const double Snapped = std::nextafter(Ref.solver().time(), 1e300);
  Ref.solver().advanceTo(Snapped); // pure snap: remainder is one ulp
  Ref.solver().advanceSteps(2);

  ShardOptions Opt = shardOptions(Scheme, 2);
  Opt.CheckpointDir = freshDir("shard-kill-after-snap");
  Opt.CheckpointEvery = 1;
  ShardCoordinator Coord(P, Opt);
  ASSERT_TRUE(Coord.start());
  ASSERT_TRUE(Coord.advanceSteps(3));
  ASSERT_TRUE(Coord.advanceTo(Snapped));
  EXPECT_TRUE(sameBits(Coord.time(), Snapped));
  Coord.killShard(1);
  ASSERT_TRUE(Coord.advanceSteps(2));
  EXPECT_EQ(Coord.stepCount(), Ref.solver().stepCount());
  EXPECT_TRUE(sameBits(Coord.time(), Ref.solver().time()));
  EXPECT_EQ(Coord.restartCount(), 0u);
  EXPECT_GE(Coord.fullRestartCount(), 1u);
  EXPECT_EQ(Coord.stateHash(), fieldStateHash(Ref.solver()));
}

// A global rewind during an export must replay the *recorded* dt stream
// — including the final advanceTo-clamped step and the end-time snap —
// not recompute unclamped steps: with no durability the fleet rewinds to
// the initial state and replays the whole run, and the re-exported state
// still matches the uninterrupted single-process run bit for bit.
TEST(ShardFault, RewindReplayPreservesAdvanceToClamp) {
  Problem<2> P = shockInteraction2D(32);
  SchemeConfig Scheme = SchemeConfig::figureScheme();
  SolverRun<2> Ref(P, serialConfig(Scheme));
  Ref.solver().advanceTo(30.0);

  ShardCoordinator Coord(P, shardOptions(Scheme, 2)); // no durability
  ASSERT_TRUE(Coord.start());
  ASSERT_TRUE(Coord.advanceTo(30.0));
  Coord.killShard(1);
  // The death is noticed by the export command itself.
  EXPECT_EQ(Coord.stateHash(), fieldStateHash(Ref.solver()));
  EXPECT_GE(Coord.fullRestartCount(), 1u);
  EXPECT_EQ(Coord.stepCount(), Ref.solver().stepCount());
  EXPECT_TRUE(sameBits(Coord.time(), Ref.solver().time()));
}

// A whole new coordinator resumes the fleet from the per-shard stores
// (latest common generation) and continues bit-identically.
TEST(ShardFault, ResumeAcrossCoordinators) {
  Problem<2> P = shockInteraction2D(32);
  SchemeConfig Scheme = SchemeConfig::figureScheme();
  SolverRun<2> Ref = referenceRun(P, Scheme, 6);
  const std::string Dir = freshDir("shard-resume");

  {
    ShardOptions Opt = shardOptions(Scheme, 2);
    Opt.CheckpointDir = Dir;
    Opt.CheckpointEvery = 2;
    ShardCoordinator Coord(P, Opt);
    ASSERT_TRUE(Coord.start());
    ASSERT_TRUE(Coord.advanceSteps(4));
    Coord.shutdown();
  }
  ShardOptions Opt = shardOptions(Scheme, 2);
  Opt.CheckpointDir = Dir;
  Opt.CheckpointEvery = 2;
  Opt.Resume = true;
  ShardCoordinator Coord(P, Opt);
  ASSERT_TRUE(Coord.start());
  EXPECT_EQ(Coord.stepCount(), 4u);
  ASSERT_TRUE(Coord.advanceSteps(2));
  EXPECT_EQ(Coord.stateHash(), fieldStateHash(Ref.solver()));
}

} // namespace
