//===- tests/DurabilityTest.cpp - Kill-at-step crash/resume harness -------===//
//
// The end-to-end durability story: a child process is SIGKILLed in the
// middle of a checkpoint write (deterministically, via the kill-write
// fault), and the parent proves that --resume restores the newest intact
// generation and continues bit-identically to a run that was never
// interrupted.  Runs the matrix the acceptance criteria name: 1D and 2D,
// serial and a threaded backend.  Also the step-guard e2e: breakdown →
// emergency checkpoint through the atomic path → resume → continue.
//
// Fork discipline: the parent never holds live worker threads at fork
// time — every SolverRun before a fork lives in a scope whose end joins
// the backend's threads.
//
//===----------------------------------------------------------------------===//

#include "io/RunIo.h"
#include "runtime/SerialBackend.h"
#include "solver/Diagnostics.h"
#include "solver/Problems.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstring>
#include <filesystem>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

using namespace sacfd;

namespace fs = std::filesystem;

namespace {

std::string freshDir(const char *Name) {
  std::string Dir = std::string(::testing::TempDir()) + "/" + Name;
  fs::remove_all(Dir);
  return Dir;
}

struct FaultGuard {
  FaultGuard() { iofault::clear(); }
  ~FaultGuard() { iofault::clear(); }
};

template <unsigned Dim> Problem<Dim> killProblem();
template <> Problem<1> killProblem<1>() { return sodProblem(64); }
template <> Problem<2> killProblem<2>() { return riemann2D(16); }

template <unsigned Dim>
RunConfig durableConfig(BackendKind Backend, unsigned Threads,
                        const std::string &Dir, unsigned Every,
                        StepMode Step = StepMode::Loops) {
  RunConfig Cfg;
  Cfg.Scheme = SchemeConfig::benchmarkScheme();
  Cfg.Backend = Backend;
  Cfg.Threads = Threads;
  Cfg.Step = Step;
  if (Step == StepMode::Dag)
    Cfg.Engine = EngineKind::Fused;
  Cfg.Checkpoint.Dir = Dir;
  Cfg.Checkpoint.Every = Every;
  Cfg.Checkpoint.Keep = 2;
  return Cfg;
}

/// The whole scenario: reference run, child killed mid-checkpoint,
/// resume, bit-identity check.
///
/// \p KillWriteNth picks the fwrite that murders the child.  Each store
/// generation costs three writes (checkpoint header, payload, manifest
/// body), so op 8 dies inside the third generation's payload (its tmp
/// file is never renamed — the generation does not exist) and op 9 dies
/// inside the manifest update (the generation IS on disk but the
/// manifest never heard of it — resume must find it by directory scan).
template <unsigned Dim>
void runKillResumeScenario(BackendKind Backend, unsigned Threads,
                           unsigned TotalSteps, unsigned Every,
                           unsigned KillWriteNth, unsigned ExpectResumeSteps,
                           const char *DirName,
                           StepMode Step = StepMode::Loops) {
  FaultGuard FG;
  std::string Dir = freshDir(DirName);

  // Uninterrupted reference, scoped so any worker threads are joined
  // before the fork below.
  std::vector<Cons<Dim>> RefField;
  double RefTime = 0.0;
  {
    RunConfig Cfg = durableConfig<Dim>(Backend, Threads, "", 0, Step);
    SolverRun<Dim> Ref(killProblem<Dim>(), Cfg);
    ASSERT_TRUE(Ref.advanceSteps(TotalSteps));
    RefField.resize(Ref.solver().field().size());
    Ref.solver().field().exportTo(RefField.data());
    RefTime = Ref.solver().time();
  }

  pid_t Child = fork();
  ASSERT_GE(Child, 0) << "fork failed";
  if (Child == 0) {
    // Sacrificial child: checkpoint periodically until the armed
    // kill-write raises SIGKILL mid-write.  No gtest machinery in here —
    // reaching _exit means the fault never fired, and the parent fails
    // on the exit status.
    iofault::Plan P;
    P.KillWriteNth = KillWriteNth;
    iofault::setPlan(P);
    RunConfig Cfg = durableConfig<Dim>(Backend, Threads, Dir, Every, Step);
    SolverRun<Dim> Run(killProblem<Dim>(), Cfg);
    setupDurableRun(Run);
    Run.advanceSteps(TotalSteps);
    _exit(2);
  }

  int Status = 0;
  ASSERT_EQ(waitpid(Child, &Status, 0), Child);
  ASSERT_TRUE(WIFSIGNALED(Status))
      << "child must die from the injected kill, not exit (status "
      << Status << ")";
  EXPECT_EQ(WTERMSIG(Status), SIGKILL);

  // Resume in the parent: discover the newest intact generation, finish
  // the run, and match the uninterrupted reference bit for bit.
  RunConfig Cfg = durableConfig<Dim>(Backend, Threads, Dir, Every, Step);
  Cfg.Checkpoint.Resume = true;
  SolverRun<Dim> Run(killProblem<Dim>(), Cfg);
  DurabilitySetup Setup = setupDurableRun(Run);
  ASSERT_TRUE(Setup.Ok);
  ASSERT_TRUE(Setup.Resumed) << "a generation must have survived the kill";
  EXPECT_EQ(Setup.ResumeSteps, ExpectResumeSteps);
  EXPECT_EQ(Run.solver().stepCount(), ExpectResumeSteps);

  // The SIGKILL stranded a staged .tmp (that is the point of the fault);
  // resume must have swept it.
  for (const fs::directory_entry &E : fs::directory_iterator(Dir))
    EXPECT_NE(E.path().extension(), ".tmp")
        << "orphaned staging file survived resume: " << E.path();

  ASSERT_TRUE(Run.advanceSteps(TotalSteps - Setup.ResumeSteps));
  std::vector<Cons<Dim>> Got(Run.solver().field().size());
  Run.solver().field().exportTo(Got.data());
  ASSERT_EQ(Got.size(), RefField.size());
  EXPECT_EQ(std::memcmp(Got.data(), RefField.data(),
                        RefField.size() * sizeof(Cons<Dim>)),
            0)
      << "resumed run must be bit-identical to the uninterrupted one";
  EXPECT_EQ(Run.solver().time(), RefTime);
  EXPECT_EQ(Run.solver().stepCount(), TotalSteps);
  fs::remove_all(Dir);
}

} // namespace

//===----------------------------------------------------------------------===//
// Kill-at-step matrix: 1D/2D x serial/threaded
//===----------------------------------------------------------------------===//

TEST(Durability, KillMidPayloadWrite1DSerial) {
  // Write op 8 = payload of the step-15 generation: its tmp is never
  // renamed, so the disk holds generations 5 and 10.
  runKillResumeScenario<1>(BackendKind::Serial, 1, /*TotalSteps=*/40,
                           /*Every=*/5, /*KillWriteNth=*/8,
                           /*ExpectResumeSteps=*/10, "kill_1d_serial");
}

TEST(Durability, KillMidManifestWrite1DSerial) {
  // Write op 9 = the manifest body after the step-15 generation was
  // renamed into place: the manifest is stale, the directory scan is
  // what must surface generation 15.
  runKillResumeScenario<1>(BackendKind::Serial, 1, /*TotalSteps=*/40,
                           /*Every=*/5, /*KillWriteNth=*/9,
                           /*ExpectResumeSteps=*/15, "kill_1d_manifest");
}

TEST(Durability, KillMidPayloadWrite2DSerial) {
  runKillResumeScenario<2>(BackendKind::Serial, 1, /*TotalSteps=*/30,
                           /*Every=*/5, /*KillWriteNth=*/8,
                           /*ExpectResumeSteps=*/10, "kill_2d_serial");
}

TEST(Durability, KillMidPayloadWrite1DThreaded) {
  runKillResumeScenario<1>(BackendKind::SpinPool, 2, /*TotalSteps=*/40,
                           /*Every=*/5, /*KillWriteNth=*/8,
                           /*ExpectResumeSteps=*/10, "kill_1d_spinpool");
}

TEST(Durability, KillMidPayloadWrite2DThreaded) {
  runKillResumeScenario<2>(BackendKind::SpinPool, 2, /*TotalSteps=*/30,
                           /*Every=*/5, /*KillWriteNth=*/8,
                           /*ExpectResumeSteps=*/10, "kill_2d_spinpool");
}

TEST(Durability, KillMidPayloadWrite2DTasks) {
  runKillResumeScenario<2>(BackendKind::Tasks, 2, /*TotalSteps=*/30,
                           /*Every=*/5, /*KillWriteNth=*/8,
                           /*ExpectResumeSteps=*/10, "kill_2d_tasks");
}

TEST(Durability, KillMidPayloadWrite2DTasksDagMode) {
  // The DAG pipeline's cached GetDT must be invalidated by the resume's
  // restoreClock, or the post-resume trajectory diverges from the
  // uninterrupted reference.
  runKillResumeScenario<2>(BackendKind::Tasks, 2, /*TotalSteps=*/30,
                           /*Every=*/5, /*KillWriteNth=*/8,
                           /*ExpectResumeSteps=*/10, "kill_2d_tasks_dag",
                           StepMode::Dag);
}

//===----------------------------------------------------------------------===//
// Periodic checkpointing is invisible to the physics
//===----------------------------------------------------------------------===//

TEST(Durability, PeriodicCheckpointingIsBitIdentical) {
  std::string Dir = freshDir("periodic_identity");

  RunConfig Plain = durableConfig<1>(BackendKind::Serial, 1, "", 0);
  SolverRun<1> A(killProblem<1>(), Plain);
  ASSERT_TRUE(A.advanceTo(0.12));

  RunConfig Durable = durableConfig<1>(BackendKind::Serial, 1, Dir, 3);
  SolverRun<1> B(killProblem<1>(), Durable);
  setupDurableRun(B);
  ASSERT_TRUE(B.advanceTo(0.12));

  EXPECT_EQ(A.solver().stepCount(), B.solver().stepCount());
  EXPECT_EQ(A.solver().time(), B.solver().time());
  EXPECT_EQ(maxFieldDifference(A.solver(), B.solver()), 0.0)
      << "the chunked checkpoint loop must replicate advanceTo exactly";
  EXPECT_FALSE(CheckpointStore(Dir).generations().empty())
      << "and it must actually have checkpointed";
  fs::remove_all(Dir);
}

TEST(Durability, GuardedPeriodicCheckpointingIsBitIdentical) {
  std::string Dir = freshDir("periodic_guarded");

  RunConfig Plain = durableConfig<1>(BackendKind::Serial, 1, "", 0);
  Plain.Guard.Enabled = true;
  Plain.Guard.Every = 4;
  SolverRun<1> A(killProblem<1>(), Plain);
  ASSERT_TRUE(A.advanceTo(0.12));

  RunConfig Durable = durableConfig<1>(BackendKind::Serial, 1, Dir, 5);
  Durable.Guard.Enabled = true;
  Durable.Guard.Every = 4;
  SolverRun<1> B(killProblem<1>(), Durable);
  setupDurableRun(B);
  ASSERT_TRUE(B.advanceTo(0.12));

  EXPECT_EQ(A.solver().stepCount(), B.solver().stepCount());
  EXPECT_EQ(maxFieldDifference(A.solver(), B.solver()), 0.0);
  fs::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Step-guard e2e: breakdown → emergency checkpoint → resume → continue
//===----------------------------------------------------------------------===//

TEST(Durability, EmergencyCheckpointRoundTripAfterBreakdown) {
  std::string Dir = freshDir("emergency_e2e");
  fs::create_directories(Dir);
  std::string Emergency = Dir + "/emergency.sacfd";

  RunConfig Cfg = durableConfig<1>(BackendKind::Serial, 1, "", 0);
  Cfg.Guard.Enabled = true;
  Cfg.Guard.Retries = 2;
  Cfg.Guard.NoFloor = true;
  Cfg.Guard.CheckpointPath = Emergency;
  Cfg.Guard.PoisonStep = 6; // persistent poison => unrecoverable
  Cfg.Guard.PoisonCells = 4;
  SolverRun<1> Run(killProblem<1>(), Cfg);
  setupDurableRun(Run);

  EXPECT_FALSE(Run.advanceTo(0.2)) << "persistent fault must fail the run";
  ASSERT_EQ(Run.guard()->reports().size(), 1u);
  const BreakdownReport &R = Run.guard()->reports().front();
  EXPECT_TRUE(R.CheckpointWritten) << R.CheckpointErrorText;
  EXPECT_EQ(R.CheckpointPath, Emergency);
  EXPECT_TRUE(R.CheckpointErrorText.empty());
  EXPECT_EQ(R.Step, 5u) << "last healthy state is the window-start snapshot";
  EXPECT_FALSE(fs::exists(Emergency + ".tmp"))
      << "the atomic path leaves no staging file";

  // Resume from the emergency checkpoint and continue without the fault:
  // the continuation must match a clean run restarted from the same
  // healthy state.
  RunConfig Clean = durableConfig<1>(BackendKind::Serial, 1, "", 0);
  SolverRun<1> Resumed(killProblem<1>(), Clean);
  ASSERT_TRUE(loadCheckpoint(Emergency, Resumed.solver()).ok());
  EXPECT_EQ(Resumed.solver().stepCount(), R.Step);
  EXPECT_EQ(maxFieldDifference(Resumed.solver(), Run.solver()), 0.0)
      << "emergency checkpoint is the guard's restored healthy state";

  SolverRun<1> Reference(killProblem<1>(), Clean);
  ASSERT_TRUE(Reference.advanceSteps(R.Step));
  ASSERT_TRUE(Resumed.advanceSteps(10));
  ASSERT_TRUE(Reference.advanceSteps(10));
  EXPECT_EQ(maxFieldDifference(Resumed.solver(), Reference.solver()), 0.0)
      << "post-resume trajectory matches an uninterrupted healthy run";
  fs::remove_all(Dir);
}
